"""Rendezvous server: CAN node + host registry + connection brokering.

This is the paper's "rendezvous server" (Fig 1-3): a public host that

1. admits desktop hosts into WAVNet (registration over the maintained
   UDP connection — the same flow whose NAT mapping later carries
   connection notifications);
2. publishes each host's resource state into the CAN so queries can be
   routed to it;
3. brokers direct host-to-host connection setup: steps 1-4 of Fig 3 —
   query routed over the CAN, rendezvous-to-rendezvous exchange, then
   both hosts receive the mutual connection information and punch;
4. runs the distance locator that feeds the locality-sensitive grouping
   strategy (§II.D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.addresses import IPv4Address
from repro.overlay.can import CAN_PORT, CanNode
from repro.overlay.resources import ConnectionInfo, ResourceRecord, ResourceSpec
from repro.overlay.rpc import RpcEndpoint, RpcError
from repro.sim.engine import Simulator
from repro.sim.lifecycle import Component

__all__ = ["RegisteredHost", "RendezvousServer", "RENDEZVOUS_PORT"]

RENDEZVOUS_PORT = 4001
HOST_TTL = 60.0


@dataclass
class RegisteredHost:
    """A desktop host admitted through this rendezvous server."""

    name: str
    # Endpoint this server can reach the host at (the NAT mapping opened
    # by the host's registration/keepalive flow).
    reach_ip: IPv4Address
    reach_port: int
    conn: ConnectionInfo
    attrs: dict
    last_seen: float

    @property
    def size(self) -> int:
        return 48


@dataclass(frozen=True)
class _RegisterBody:
    name: str
    conn: ConnectionInfo
    attrs: dict

    @property
    def size(self) -> int:
        return 48 + 8 * len(self.attrs)


@dataclass(frozen=True)
class _ConnectBody:
    """a1 asks its rendezvous to broker a connection to ``target``."""

    requester: str
    requester_conn: ConnectionInfo
    target: str
    target_rendezvous_ip: IPv4Address
    target_rendezvous_port: int

    @property
    def size(self) -> int:
        return 64


@dataclass(frozen=True)
class _PunchNotice:
    """Delivered to a host: punch toward this peer now."""

    peer_name: str
    peer_conn: ConnectionInfo

    @property
    def size(self) -> int:
        return 48


class RendezvousServer(Component):
    """One rendezvous server (public host) with its CAN node.

    As a lifecycle :class:`~repro.sim.lifecycle.Component` (kind
    ``rendezvous``): ``crash`` kills the process — host registry and
    latency reports are lost, both sockets close, and the embedded CAN
    node crashes with it; ``restore`` rebinds, restarts the receive
    loop, and rejoins the CAN overlay through cached peer addresses.
    Hosts re-appear in the registry only when their keepalives (or a
    driver failover re-registration) arrive.
    """

    def __init__(self, host, spec: Optional[ResourceSpec] = None,
                 can_dims: int = 2, port: int = RENDEZVOUS_PORT,
                 can_port: int = CAN_PORT, host_ttl: float = HOST_TTL) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        Component.__init__(self, host.sim, "rendezvous", host.name)
        self.spec = spec or ResourceSpec()
        self.port = port
        self.host_ttl = host_ttl
        self.ip: IPv4Address = host.stack.ips[0]
        self.can = CanNode(host, dims=self.spec.dims, port=can_port)
        self.hosts: dict[str, RegisteredHost] = {}
        self.latency_reports: dict[tuple[str, str], float] = {}
        self.connects_brokered = 0
        self.frames_relayed = 0
        self.metrics = self.sim.metrics.scope(f"{host.name}.rvz")
        self._m_registered = self.metrics.counter("hosts.registered")
        self._m_keepalives = self.metrics.counter("keepalives")
        self._m_queries = self.metrics.counter("queries")
        self._m_brokered = self.metrics.counter("connects.brokered")
        self._m_relay_frames = self.metrics.counter("relay.frames")
        self._m_relay_bytes = self.metrics.counter("relay.bytes")
        self._sock = host.udp.bind(port)
        self.rpc = RpcEndpoint(host.stack, self._sock, name=f"rvz:{host.name}",
                               own_loop=False)
        self._rx_proc = self.sim.process(self._rx_loop(self._sock),
                                         name=f"rvz-rx:{host.name}")
        self.rpc.register("rvz.register", self._on_register)
        self.rpc.register("rvz.keepalive", self._on_keepalive)
        self.rpc.register("rvz.query", self._on_query)
        self.rpc.register("rvz.connect", self._on_connect)
        self.rpc.register("rvz.relay_connect", self._on_relay_connect)
        self.rpc.register("rvz.latency_report", self._on_latency_report)

    def _rx_loop(self, sock):
        """Demultiplex the rendezvous socket: RPC envelopes to the RPC
        endpoint, relayed tunnel payloads (symmetric-NAT fallback) to the
        target host's registered endpoint."""
        from repro.core.assembler import WavRelay
        from repro.net.packet import Payload
        from repro.sim.engine import Interrupt

        try:
            while True:
                payload, src_ip, src_port = yield sock.recvfrom()
                body = payload.data
                if isinstance(body, WavRelay):
                    reg = self.hosts.get(body.target)
                    if reg is not None:
                        self.frames_relayed += 1
                        self._m_relay_frames.add()
                        self._m_relay_bytes.add(payload.size)
                        sock.sendto(reg.reach_ip, reg.reach_port,
                                    Payload(payload.size, data=body, kind="wav"))
                    continue
                self.rpc.handle_datagram(payload, src_ip, src_port)
        except Interrupt:
            return

    # -- lifecycle ------------------------------------------------------
    def _on_stop(self) -> None:
        if self._rx_proc is not None and self._rx_proc.is_alive:
            self._rx_proc.interrupt("stopped")
            self._rx_proc.defuse()
        self._rx_proc = None
        self._sock.close()
        self.hosts.clear()
        self.latency_reports.clear()
        self.can.crash()

    def _on_restore(self) -> None:
        self._sock = self.host.udp.bind(self.port)
        self.rpc.rebind(self._sock)
        self._rx_proc = self.sim.process(self._rx_loop(self._sock),
                                         name=f"rvz-rx:{self.host.name}")
        self.can.restore()

    # -- overlay membership --------------------------------------------------
    def bootstrap(self) -> None:
        self.can.bootstrap()

    def join_via(self, other: "RendezvousServer"):
        return self.can.join_via(other.ip, other.can.port)

    # -- host admission --------------------------------------------------------
    def _record_for(self, reg: RegisteredHost) -> ResourceRecord:
        point = self.spec.to_point(**reg.attrs)
        return ResourceRecord(reg.name, point, dict(reg.attrs), reg.conn)

    def _on_register(self, body: _RegisterBody, src_ip: IPv4Address, src_port: int):
        self._m_registered.add()
        reg = RegisteredHost(body.name, src_ip, src_port, body.conn,
                             dict(body.attrs), self.sim.now)
        self.hosts[body.name] = reg

        def publish():
            record = self._record_for(reg)
            yield from self.can.route("put", record.point, record)
            return ("registered", self.host.name)

        return publish()

    def _on_keepalive(self, body, src_ip: IPv4Address, src_port: int):
        self._m_keepalives.add()
        name, attrs = body
        reg = self.hosts.get(name)
        if reg is None:
            raise RpcError(f"{name!r} not registered")
        reg.last_seen = self.sim.now
        reg.reach_ip, reg.reach_port = src_ip, src_port
        if attrs:
            reg.attrs = dict(attrs)

        def refresh():
            record = self._record_for(reg)
            yield from self.can.route("put", record.point, record)
            return ("ok", self.host.name)

        return refresh()

    # -- resource discovery -----------------------------------------------------
    def _on_query(self, body, _src_ip, _src_port):
        """Query: (attrs dict, limit) -> records near the requested point."""
        self._m_queries.add()
        attrs, limit = body

        def run():
            point = self.spec.to_point(**attrs)
            records = yield from self.can.route("get", point, int(limit))
            return records

        return run()

    # -- connection brokering (Fig 3 steps 2-3) ------------------------------
    def _on_connect(self, body: _ConnectBody, _src_ip, _src_port):
        """Requester's rendezvous (node A): exchange info with node B."""
        self.connects_brokered += 1
        self._m_brokered.add()

        def run():
            if (body.target_rendezvous_ip == self.ip
                    and body.target_rendezvous_port == self.port):
                result = yield from self._relay_local(body)
                return result
            result = yield from self.rpc.call(
                body.target_rendezvous_ip, body.target_rendezvous_port,
                "rvz.relay_connect", body, timeout=5.0)
            return result

        return run()

    def _on_relay_connect(self, body: _ConnectBody, _src_ip, _src_port):
        """Target's rendezvous (node B): notify b1, reply with its info."""
        return self._relay_local(body)

    def _relay_local(self, body: _ConnectBody):
        reg = self.hosts.get(body.target)
        if reg is None:
            raise RpcError(f"host {body.target!r} not registered here")
        # Step 3: tell b1 to start punching toward a1.
        self.rpc.notify(reg.reach_ip, reg.reach_port, "wav.punch",
                        _PunchNotice(body.requester, body.requester_conn))
        if False:
            yield  # pragma: no cover - keeps this a generator for uniformity
        return _PunchNotice(body.target, reg.conn)

    # -- distance locator --------------------------------------------------------
    def _on_latency_report(self, body, _src_ip, _src_port):
        """Hosts report measured RTTs: (reporter, {peer_name: rtt_seconds})."""
        reporter, rtts = body
        for peer, rtt in rtts.items():
            self.latency_reports[(reporter, peer)] = rtt
            self.latency_reports[(peer, reporter)] = rtt  # symmetry (Eq. 2)
        return ("ok", len(rtts))

    def latency_matrix(self) -> "tuple[list[str], Any]":
        """(names, NxN numpy matrix) from accumulated reports (NaN where
        unmeasured) — the distance locator state used for grouping."""
        import numpy as np

        names = sorted({a for a, _b in self.latency_reports}
                       | {b for _a, b in self.latency_reports}
                       | set(self.hosts))
        index = {n: i for i, n in enumerate(names)}
        matrix = np.full((len(names), len(names)), np.nan)
        np.fill_diagonal(matrix, 0.0)
        for (a, b), rtt in self.latency_reports.items():
            matrix[index[a], index[b]] = rtt
        return names, matrix

    # -- liveness -----------------------------------------------------------------
    def expire_hosts(self) -> list[str]:
        horizon = self.sim.now - self.host_ttl
        gone = [n for n, reg in self.hosts.items() if reg.last_seen < horizon]
        for name in gone:
            del self.hosts[name]
        return gone
