"""Rendezvous server: CAN node + host registry + connection brokering.

This is the paper's "rendezvous server" (Fig 1-3): a public host that

1. admits desktop hosts into WAVNet (registration over the maintained
   UDP connection — the same flow whose NAT mapping later carries
   connection notifications);
2. publishes each host's resource state into the CAN so queries can be
   routed to it;
3. brokers direct host-to-host connection setup: steps 1-4 of Fig 3 —
   query routed over the CAN, rendezvous-to-rendezvous exchange, then
   both hosts receive the mutual connection information and punch;
4. runs the distance locator that feeds the locality-sensitive grouping
   strategy (§II.D).

Beyond the paper, the registry is backed by the struct-of-arrays
:class:`~repro.core.hoststate.HostTable` rather than per-host objects:
``server.hosts`` is a live view over the table rows this server owns,
so a million registered-but-idle endpoints cost table rows, not Python
object stacks. Registration supports *batching* (``rvz.register_batch``
carries column arrays for hundreds of endpoints in one envelope) and
*admission control* (a token bucket sheds load during registration
storms with an explicit retry-after error instead of silent queue
collapse).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.core.hoststate import EndpointRow, HostTable
from repro.net.addresses import IPv4Address
from repro.overlay.can import CAN_PORT, CanNode
from repro.overlay.resources import ConnectionInfo, ResourceRecord, ResourceSpec
from repro.overlay.rpc import RpcEndpoint, RpcError
from repro.sim.engine import Simulator
from repro.sim.lifecycle import Component

__all__ = ["AdmissionReject", "RegisteredHost", "RendezvousServer",
           "RENDEZVOUS_PORT"]

RENDEZVOUS_PORT = 4001
HOST_TTL = 60.0

# The registry entry type: a live struct-of-arrays row view. Kept under
# the historical name — the attribute surface is unchanged.
RegisteredHost = EndpointRow


class AdmissionReject(RpcError):
    """Registration shed by the token bucket; retry after backoff."""


class _HostsView:
    """Mapping-like live view of the table rows one server owns.

    Supports the subset of the old ``dict[str, RegisteredHost]``
    interface the protocol handlers and tests use: membership, length,
    iteration (names), ``get``/``__getitem__`` (row views), ``values``.
    """

    def __init__(self, table: HostTable, owner: int) -> None:
        self._table = table
        self._owner = owner

    def _owned(self, name: str) -> int:
        host_id = self._table.lookup(name)
        if host_id < 0 or int(self._table.owner[host_id]) != self._owner:
            return -1
        if not (self._table.flags[host_id] & 1):  # FLAG_REGISTERED
            return -1
        return host_id

    def get(self, name: str, default=None):
        host_id = self._owned(name)
        return self._table.row(host_id) if host_id >= 0 else default

    def __getitem__(self, name: str) -> EndpointRow:
        row = self.get(name)
        if row is None:
            raise KeyError(name)
        return row

    def __contains__(self, name: str) -> bool:
        return self._owned(name) >= 0

    def _ids(self) -> np.ndarray:
        return self._table.registered_ids(owner=self._owner)

    def __len__(self) -> int:
        return int(len(self._ids()))

    def __iter__(self):
        return iter(self._table.names_of(self._ids()))

    def keys(self):
        return list(self)

    def values(self):
        return [self._table.row(int(i)) for i in self._ids()]

    def items(self):
        return [(self._table.name_of(int(i)), self._table.row(int(i)))
                for i in self._ids()]


class _TokenBucket:
    """Deterministic token bucket (refill computed from sim time)."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = 0.0

    def admit(self, now: float, n: float) -> bool:
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def retry_after(self, n: float) -> float:
        return max(0.0, (n - self.tokens) / self.rate)


@dataclass(frozen=True)
class _RegisterBody:
    name: str
    conn: ConnectionInfo
    attrs: dict

    @property
    def size(self) -> int:
        return 48 + 8 * len(self.attrs)


@dataclass(frozen=True)
class _RegisterBatch:
    """Column-packed bulk registration: parallel arrays, one envelope.

    ``attr_values`` rows follow the server's ResourceSpec attribute
    order. The batch shares one reachability endpoint (the lane socket
    that sent it) — exactly what a concentrator/proxy re-registering a
    site's endpoints after an outage looks like.
    """

    names: tuple
    public_ip: np.ndarray
    public_port: np.ndarray
    private_ip: np.ndarray
    private_port: np.ndarray
    nat_code: np.ndarray
    attr_values: np.ndarray
    region: int = -1

    def __len__(self) -> int:
        return len(self.names)

    @property
    def size(self) -> int:
        return 24 + 40 * len(self.names)


@dataclass(frozen=True)
class _KeepaliveBatch:
    names: tuple

    @property
    def size(self) -> int:
        return 16 + 8 * len(self.names)


@dataclass(frozen=True)
class _ConnectBody:
    """a1 asks its rendezvous to broker a connection to ``target``."""

    requester: str
    requester_conn: ConnectionInfo
    target: str
    target_rendezvous_ip: IPv4Address
    target_rendezvous_port: int

    @property
    def size(self) -> int:
        return 64


@dataclass(frozen=True)
class _PunchNotice:
    """Delivered to a host: punch toward this peer now."""

    peer_name: str
    peer_conn: ConnectionInfo

    @property
    def size(self) -> int:
        return 48


class RendezvousServer(Component):
    """One rendezvous server (public host) with its CAN node.

    As a lifecycle :class:`~repro.sim.lifecycle.Component` (kind
    ``rendezvous``): ``crash`` kills the process — the registrations
    this server owns are released from the shared host table (volatile
    registry semantics), latency reports are lost, both sockets close,
    and the embedded CAN node crashes with it; ``restore`` rebinds,
    restarts the receive loop, and rejoins the CAN overlay through
    cached peer addresses. Hosts re-appear in the registry only when
    their keepalives (or a driver failover re-registration) arrive.
    """

    def __init__(self, host, spec: Optional[ResourceSpec] = None,
                 can_dims: int = 2, port: int = RENDEZVOUS_PORT,
                 can_port: int = CAN_PORT, host_ttl: float = HOST_TTL,
                 table: Optional[HostTable] = None, server_index: int = 0,
                 admission_rate: Optional[float] = None,
                 admission_burst: Optional[float] = None,
                 expiry_interval: Optional[float] = None,
                 retry_concurrency: Optional[int] = None,
                 replication_factor: Optional[int] = None,
                 hot_zone_limit: Optional[int] = None) -> None:
        self.host = host
        self.sim: Simulator = host.sim
        Component.__init__(self, host.sim, "rendezvous", host.name)
        self.spec = spec or ResourceSpec()
        self.port = port
        self.host_ttl = host_ttl
        self.ip: IPv4Address = host.stack.ips[0]
        self.table = table if table is not None else HostTable(
            self.sim, spec=self.spec)
        self.server_index = server_index
        self.can = CanNode(host, dims=self.spec.dims, port=can_port,
                           table=self.table,
                           replication_factor=replication_factor,
                           hot_zone_limit=hot_zone_limit,
                           retry_concurrency=retry_concurrency)
        self.hosts = _HostsView(self.table, server_index)
        self.latency_reports: dict[tuple[str, str], float] = {}
        self.connects_brokered = 0
        self.frames_relayed = 0
        self.admission = (_TokenBucket(admission_rate,
                                       admission_burst or 2 * admission_rate)
                          if admission_rate else None)
        self.expiry_interval = expiry_interval
        self.metrics = self.sim.metrics.scope(f"{host.name}.rvz")
        self._m_registered = self.metrics.counter("hosts.registered")
        self._m_batched = self.metrics.counter("hosts.batch_registered")
        self._m_keepalives = self.metrics.counter("keepalives")
        self._m_queries = self.metrics.counter("queries")
        self._m_brokered = self.metrics.counter("connects.brokered")
        self._m_relay_frames = self.metrics.counter("relay.frames")
        self._m_relay_bytes = self.metrics.counter("relay.bytes")
        self._m_admitted = self.metrics.counter("admission.accepted")
        self._m_rejected = self.metrics.counter("admission.rejected")
        self._m_expired = self.metrics.counter("hosts.expired")
        self._sock = host.udp.bind(port)
        self.rpc = RpcEndpoint(host.stack, self._sock, name=f"rvz:{host.name}",
                               own_loop=False,
                               retry_concurrency=retry_concurrency)
        self._rx_proc = self.sim.process(self._rx_loop(self._sock),
                                         name=f"rvz-rx:{host.name}")
        self._expiry_proc = None
        if expiry_interval:
            self._expiry_proc = self.sim.process(
                self._expiry_loop(), name=f"rvz-expire:{host.name}")
        self.rpc.register("rvz.register", self._on_register)
        self.rpc.register("rvz.register_batch", self._on_register_batch)
        self.rpc.register("rvz.keepalive", self._on_keepalive)
        self.rpc.register("rvz.keepalive_batch", self._on_keepalive_batch)
        self.rpc.register("rvz.query", self._on_query)
        self.rpc.register("rvz.connect", self._on_connect)
        self.rpc.register("rvz.relay_connect", self._on_relay_connect)
        self.rpc.register("rvz.latency_report", self._on_latency_report)

    def _rx_loop(self, sock):
        """Demultiplex the rendezvous socket: RPC envelopes to the RPC
        endpoint, relayed tunnel payloads (symmetric-NAT fallback) to the
        target host's registered endpoint."""
        from repro.core.assembler import WavRelay
        from repro.net.packet import Payload
        from repro.sim.engine import Interrupt

        try:
            while True:
                payload, src_ip, src_port = yield sock.recvfrom()
                body = payload.data
                if isinstance(body, WavRelay):
                    reg = self.hosts.get(body.target)
                    if reg is not None:
                        self.frames_relayed += 1
                        self._m_relay_frames.add()
                        self._m_relay_bytes.add(payload.size)
                        sock.sendto(reg.reach_ip, reg.reach_port,
                                    Payload(payload.size, data=body, kind="wav"))
                    continue
                self.rpc.handle_datagram(payload, src_ip, src_port)
        except Interrupt:
            return

    def _expiry_loop(self):
        """Process: periodic TTL sweep over this server's table rows —
        the idle-endpoint liveness reaper at fleet scale (a materialized
        host's driver keepalives exempt it)."""
        from repro.sim.engine import Interrupt
        try:
            while True:
                yield self.sim.timeout(self.expiry_interval)
                gone = self.expire_hosts()
                if gone:
                    self.sim.trace.event("rvz.expired", server=self.host.name,
                                         count=len(gone))
        except Interrupt:
            return

    # -- lifecycle ------------------------------------------------------
    def _on_stop(self) -> None:
        if self._rx_proc is not None and self._rx_proc.is_alive:
            self._rx_proc.interrupt("stopped")
            self._rx_proc.defuse()
        self._rx_proc = None
        if self._expiry_proc is not None and self._expiry_proc.is_alive:
            self._expiry_proc.interrupt("stopped")
            self._expiry_proc.defuse()
        self._expiry_proc = None
        self._sock.close()
        self.table.release_owner(self.server_index)
        self.latency_reports.clear()
        self.can.crash()

    def _on_restore(self) -> None:
        self._sock = self.host.udp.bind(self.port)
        self.rpc.rebind(self._sock)
        self._rx_proc = self.sim.process(self._rx_loop(self._sock),
                                         name=f"rvz-rx:{self.host.name}")
        if self.expiry_interval:
            self._expiry_proc = self.sim.process(
                self._expiry_loop(), name=f"rvz-expire:{self.host.name}")
        self.can.restore()

    # -- overlay membership --------------------------------------------------
    def bootstrap(self) -> None:
        self.can.bootstrap()

    def join_via(self, other: "RendezvousServer"):
        return self.can.join_via(other.ip, other.can.port)

    # -- admission control -----------------------------------------------------
    def _admit(self, n: int) -> None:
        if self.admission is None:
            self._m_admitted.add(n)
            return
        if self.admission.admit(self.sim.now, n):
            self._m_admitted.add(n)
            return
        self._m_rejected.add(n)
        retry = self.admission.retry_after(n)
        self.sim.trace.event("rvz.admission_reject", server=self.host.name,
                             n=n, retry_after=round(retry, 3))
        raise AdmissionReject(f"admission: retry after {retry:.3f}")

    # -- host admission --------------------------------------------------------
    def _record_for(self, reg: EndpointRow) -> ResourceRecord:
        point = self.spec.to_point(**reg.attrs)
        return ResourceRecord(reg.name, point, dict(reg.attrs), reg.conn)

    def _on_register(self, body: _RegisterBody, src_ip: IPv4Address, src_port: int):
        self._admit(1)
        self._m_registered.add()
        host_id = self.table.register(body.name, body.conn, dict(body.attrs),
                                      (src_ip, src_port), self.sim.now,
                                      owner=self.server_index)
        reg = self.table.row(host_id)

        def publish():
            record = self._record_for(reg)
            yield from self.can.route("put", record.point, record)
            return ("registered", self.host.name)

        return publish()

    def _on_register_batch(self, batch: _RegisterBatch,
                           src_ip: IPv4Address, src_port: int):
        """Bulk admission: one token-bucket draw, one vectorized table
        insert, and handle-based CAN publication grouped by owner — no
        per-endpoint RPC amplification."""
        self._admit(len(batch))
        self._m_batched.add(len(batch))
        ids = self.table.register_batch(
            batch.names, batch.public_ip, batch.public_port,
            batch.private_ip, batch.private_port, batch.nat_code,
            batch.attr_values, rendezvous=(self.ip, self.port),
            reach=(src_ip, src_port), now=self.sim.now,
            owner=self.server_index, region=batch.region)

        def publish():
            stored = yield from self.can.put_ids(ids)
            return ("registered_batch", len(batch), stored)

        return publish()

    def _on_keepalive(self, body, src_ip: IPv4Address, src_port: int):
        self._m_keepalives.add()
        name, attrs = body
        reg = self.hosts.get(name)
        if reg is None:
            raise RpcError(f"{name!r} not registered")
        reg.last_seen = self.sim.now
        reg.reach_ip, reg.reach_port = src_ip, src_port
        if attrs:
            reg.attrs = dict(attrs)

        def refresh():
            record = self._record_for(reg)
            yield from self.can.route("put", record.point, record)
            return ("ok", self.host.name)

        return refresh()

    def _on_keepalive_batch(self, batch: _KeepaliveBatch,
                            src_ip: IPv4Address, src_port: int):
        """Batched liveness-epoch bump for idle table-resident
        endpoints. No CAN refresh needed: handle records read liveness
        straight from the table."""
        self._m_keepalives.add(len(batch.names))
        alive = self.table.touch_names(batch.names, self.sim.now)
        return ("ok", alive)

    # -- resource discovery -----------------------------------------------------
    def _on_query(self, body, _src_ip, _src_port):
        """Query: (attrs dict, limit) -> records near the requested point."""
        self._m_queries.add()
        attrs, limit = body

        def run():
            point = self.spec.to_point(**attrs)
            records = yield from self.can.route("get", point, int(limit))
            return records

        return run()

    # -- connection brokering (Fig 3 steps 2-3) ------------------------------
    def _on_connect(self, body: _ConnectBody, src_ip, src_port):
        """Requester's rendezvous (node A): exchange info with node B."""
        self.connects_brokered += 1
        self._m_brokered.add()
        # Stamp the requester's *live* mapping (the source of this very
        # RPC) as the prediction base. The STUN-time public_port is stale
        # for symmetric NATs — every flow since has advanced the
        # allocator — so peers predict from the freshest observation.
        if src_ip == body.requester_conn.public_ip:
            body = replace(body, requester_conn=replace(
                body.requester_conn, observed_port=src_port))

        def run():
            if (body.target_rendezvous_ip == self.ip
                    and body.target_rendezvous_port == self.port):
                result = yield from self._relay_local(body)
                return result
            result = yield from self.rpc.call(
                body.target_rendezvous_ip, body.target_rendezvous_port,
                "rvz.relay_connect", body, timeout=5.0)
            return result

        return run()

    def _on_relay_connect(self, body: _ConnectBody, _src_ip, _src_port):
        """Target's rendezvous (node B): notify b1, reply with its info."""
        return self._relay_local(body)

    def _relay_local(self, body: _ConnectBody):
        reg = self.hosts.get(body.target)
        if reg is None:
            raise RpcError(f"host {body.target!r} not registered here")
        # Step 3: tell b1 to start punching toward a1.
        self.rpc.notify(reg.reach_ip, reg.reach_port, "wav.punch",
                        _PunchNotice(body.requester, body.requester_conn))
        if False:
            yield  # pragma: no cover - keeps this a generator for uniformity
        return _PunchNotice(body.target, reg.conn)

    # -- distance locator --------------------------------------------------------
    def _on_latency_report(self, body, _src_ip, _src_port):
        """Hosts report measured RTTs: (reporter, {peer_name: rtt_seconds})."""
        reporter, rtts = body
        for peer, rtt in rtts.items():
            self.latency_reports[(reporter, peer)] = rtt
            self.latency_reports[(peer, reporter)] = rtt  # symmetry (Eq. 2)
        return ("ok", len(rtts))

    def latency_matrix(self) -> "tuple[list[str], Any]":
        """(names, NxN numpy matrix) from accumulated reports (NaN where
        unmeasured) — the distance locator state used for grouping."""
        names = sorted({a for a, _b in self.latency_reports}
                       | {b for _a, b in self.latency_reports}
                       | set(self.hosts))
        index = {n: i for i, n in enumerate(names)}
        matrix = np.full((len(names), len(names)), np.nan)
        np.fill_diagonal(matrix, 0.0)
        for (a, b), rtt in self.latency_reports.items():
            matrix[index[a], index[b]] = rtt
        return names, matrix

    # -- liveness -----------------------------------------------------------------
    def expire_hosts(self) -> list[str]:
        gone = self.table.expire(self.sim.now - self.host_ttl,
                                 owner=self.server_index)
        if gone:
            self._m_expired.add(len(gone))
        return gone
