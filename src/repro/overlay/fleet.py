"""Load-balanced rendezvous fleet: consistent-hash endpoint assignment.

The paper runs a handful of rendezvous servers with clients statically
pointed at one of them. At 10^5-10^6 endpoints the assignment itself
becomes a control-plane concern: endpoints must spread across N servers,
an endpoint must map to the *same* server across reconnects (so its
directory row keeps one owner), and a server crash must only remap the
endpoints it owned.

:class:`RendezvousFleet` implements the standard consistent-hash ring
(crc32 of ``server-name#vnode``, ~64 virtual nodes per server) over a
set of :class:`~repro.overlay.rendezvous.RendezvousServer` instances
that share one :class:`~repro.core.hoststate.HostTable`. ``assign``
skips servers that are not RUNNING, so a regional outage automatically
drains to the survivors — and the mass reconnect that follows is exactly
the registration-storm scenario.

Load metrics are published under ``rvz.fleet.*`` so sweeps can plot
per-server control-plane load.
"""

from __future__ import annotations

import bisect
from zlib import crc32

__all__ = ["HashRing", "RendezvousFleet"]

VNODES = 64


class HashRing:
    """The consistent-hash ring itself, built from server *names* only.

    This is the static, driver-side view of the fleet assignment: it
    needs no live server objects, so endpoint code (and PDES partitions
    that own no rendezvous server) can compute the same primary/backup
    ordering the fleet would. :class:`RendezvousFleet` builds its ring
    through this class, so the two can never disagree on hashing.
    """

    def __init__(self, names: list[str], vnodes: int = VNODES) -> None:
        if not names:
            raise ValueError("ring needs at least one server name")
        self.names = list(names)
        self._ring: list[tuple[int, int]] = []  # (hash, server_index)
        for idx, name in enumerate(self.names):
            for v in range(vnodes):
                self._ring.append((crc32(f"{name}#{v}".encode()), idx))
        self._ring.sort()
        self._keys = [h for h, _ in self._ring]

    def index(self, name: str) -> int:
        """Primary server index for ``name``: the first ring vnode
        clockwise of the name's hash."""
        h = crc32(name.encode())
        return self._ring[bisect.bisect_right(self._keys, h)
                          % len(self._ring)][1]

    def order(self, name: str) -> list[int]:
        """All server indices in ring-successor order from ``name``'s
        hash — the primary first, then the failover sequence a crash of
        each predecessor would fall through to."""
        h = crc32(name.encode())
        start = bisect.bisect_right(self._keys, h) % len(self._ring)
        seen: set[int] = set()
        out: list[int] = []
        for step in range(len(self._ring)):
            idx = self._ring[(start + step) % len(self._ring)][1]
            if idx not in seen:
                seen.add(idx)
                out.append(idx)
                if len(out) == len(self.names):
                    break
        return out


class RendezvousFleet:
    """Consistent-hash front over rendezvous servers sharing a table."""

    def __init__(self, servers, vnodes: int = VNODES) -> None:
        if not servers:
            raise ValueError("fleet needs at least one server")
        self.servers = list(servers)
        self.table = self.servers[0].table
        for s in self.servers:
            if s.table is not self.table:
                raise ValueError("fleet servers must share one HostTable")
        self.sim = self.servers[0].sim
        self.ring = HashRing([s.host.name for s in self.servers], vnodes)
        self._ring = self.ring._ring
        self._keys = self.ring._keys
        self.metrics = self.sim.metrics.scope("rvz.fleet")
        self._m_assigns = self.metrics.counter("assignments")
        self._m_failover = self.metrics.counter("assign_failovers")
        self._g_servers = self.metrics.gauge("servers_up")
        self._g_load = [self.metrics.gauge(f"load.{s.host.name}")
                        for s in self.servers]
        self._g_servers.set(len(self.servers))

    def __len__(self) -> int:
        return len(self.servers)

    # -- assignment -----------------------------------------------------
    def assign_index(self, name: str) -> int:
        """Server index for ``name``: first ring vnode clockwise of the
        name's hash whose server is RUNNING."""
        self._m_assigns.add()
        h = crc32(name.encode())
        start = bisect.bisect_right(self._keys, h) % len(self._ring)
        for step in range(len(self._ring)):
            idx = self._ring[(start + step) % len(self._ring)][1]
            if self.servers[idx].running:
                if step:
                    self._m_failover.add()
                return idx
        raise RuntimeError("no rendezvous server is running")

    def assign(self, name: str):
        return self.servers[self.assign_index(name)]

    # -- observability --------------------------------------------------
    def publish_load(self) -> dict:
        """Refresh ``rvz.fleet.load.<server>`` gauges from the table's
        owner column; returns {server_name: registered endpoints}."""
        up = 0
        loads = {}
        for idx, server in enumerate(self.servers):
            n = int(len(self.table.registered_ids(owner=server.server_index)))
            loads[server.host.name] = n
            self._g_load[idx].set(n)
            if server.running:
                up += 1
        self._g_servers.set(up)
        self.sim.trace.event("rvz.fleet.load", servers_up=up,
                             max_load=max(loads.values(), default=0),
                             min_load=min(loads.values(), default=0))
        return loads
