"""CAN coordinate-space geometry: points and zones on the d-torus.

The CAN key space is the unit d-torus [0,1)^d. Zones are axis-aligned
boxes; joins split a zone in half along its longest dimension (round-
robin tie-break on dimension index, as in the CAN paper); neighbors are
zones sharing a (d-1)-dimensional face, with wraparound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["Point", "Zone", "torus_distance"]

Point = tuple  # tuple[float, ...] in [0,1)^d


def _wrap_gap(a_lo: float, a_hi: float, b_lo: float, b_hi: float) -> bool:
    """Do intervals [a_lo,a_hi) and [b_lo,b_hi) abut on the unit circle?"""
    if abs(a_hi - b_lo) < 1e-12 or abs(b_hi - a_lo) < 1e-12:
        return True
    # Wraparound faces at 0/1.
    if abs(a_hi - 1.0) < 1e-12 and abs(b_lo) < 1e-12:
        return True
    if abs(b_hi - 1.0) < 1e-12 and abs(a_lo) < 1e-12:
        return True
    return False


def _overlap(a_lo: float, a_hi: float, b_lo: float, b_hi: float) -> bool:
    """Do the intervals overlap in more than a point?"""
    return min(a_hi, b_hi) - max(a_lo, b_lo) > 1e-12


def _axis_distance(x: float, lo: float, hi: float) -> float:
    """Torus distance from coordinate x to interval [lo, hi)."""
    if lo - 1e-12 <= x < hi + 1e-12:
        return 0.0
    d1 = min(abs(x - lo), abs(x - hi))
    d2 = min(abs(x - lo + 1.0), abs(x - hi - 1.0), abs(x - lo - 1.0), abs(x - hi + 1.0))
    return min(d1, d2)


def torus_distance(a: Point, b: Point) -> float:
    """Euclidean distance on the unit torus."""
    total = 0.0
    for x, y in zip(a, b):
        d = abs(x - y)
        d = min(d, 1.0 - d)
        total += d * d
    return total ** 0.5


@dataclass(frozen=True)
class Zone:
    """Axis-aligned box: per-dimension [lo, hi) intervals."""

    lows: tuple
    highs: tuple

    @classmethod
    def whole(cls, dims: int) -> "Zone":
        return cls(tuple(0.0 for _ in range(dims)), tuple(1.0 for _ in range(dims)))

    @property
    def dims(self) -> int:
        return len(self.lows)

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise ValueError("dimension mismatch")
        for lo, hi in zip(self.lows, self.highs):
            if not (0.0 <= lo < hi <= 1.0):
                raise ValueError(f"bad interval [{lo}, {hi})")

    def contains(self, point: Sequence[float]) -> bool:
        if len(point) != self.dims:
            raise ValueError(f"point dim {len(point)} != zone dim {self.dims}")
        return all(lo <= x < hi for x, lo, hi in zip(point, self.lows, self.highs))

    def volume(self) -> float:
        v = 1.0
        for lo, hi in zip(self.lows, self.highs):
            v *= hi - lo
        return v

    def center(self) -> Point:
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.lows, self.highs))

    def longest_dim(self) -> int:
        """Index of the widest dimension (first wins on ties — the CAN
        ordered-splitting convention)."""
        widths = [hi - lo for lo, hi in zip(self.lows, self.highs)]
        return widths.index(max(widths))

    def split(self) -> "tuple[Zone, Zone]":
        """Halve along the longest dimension; returns (lower, upper)."""
        d = self.longest_dim()
        mid = (self.lows[d] + self.highs[d]) / 2.0
        lower = Zone(self.lows, tuple(mid if i == d else h for i, h in enumerate(self.highs)))
        upper = Zone(tuple(mid if i == d else l for i, l in enumerate(self.lows)), self.highs)
        return lower, upper

    def is_neighbor(self, other: "Zone") -> bool:
        """True if the zones share a (d-1)-dimensional face (torus-aware)."""
        if other.dims != self.dims:
            return False
        abut_dims = 0
        for i in range(self.dims):
            a_lo, a_hi = self.lows[i], self.highs[i]
            b_lo, b_hi = other.lows[i], other.highs[i]
            full_a = a_hi - a_lo >= 1.0 - 1e-12
            full_b = b_hi - b_lo >= 1.0 - 1e-12
            if _overlap(a_lo, a_hi, b_lo, b_hi) or full_a or full_b:
                continue
            if _wrap_gap(a_lo, a_hi, b_lo, b_hi):
                abut_dims += 1
            else:
                return False
        return abut_dims == 1

    def distance_to_point(self, point: Sequence[float]) -> float:
        """Torus distance from the zone (as a set) to a point."""
        total = 0.0
        for x, lo, hi in zip(point, self.lows, self.highs):
            d = _axis_distance(x, lo, hi)
            total += d * d
        return total ** 0.5

    def can_merge(self, other: "Zone") -> bool:
        """True if the union of the two zones is itself a box."""
        same = [i for i in range(self.dims)
                if abs(self.lows[i] - other.lows[i]) < 1e-12
                and abs(self.highs[i] - other.highs[i]) < 1e-12]
        if len(same) != self.dims - 1:
            return False
        (d,) = [i for i in range(self.dims) if i not in same]
        return (abs(self.highs[d] - other.lows[d]) < 1e-12
                or abs(other.highs[d] - self.lows[d]) < 1e-12)

    def merge(self, other: "Zone") -> "Zone":
        if not self.can_merge(other):
            raise ValueError(f"cannot merge {self} with {other}")
        lows = tuple(min(a, b) for a, b in zip(self.lows, other.lows))
        highs = tuple(max(a, b) for a, b in zip(self.highs, other.highs))
        return Zone(lows, highs)

    def __str__(self) -> str:
        parts = ", ".join(f"[{lo:.3f},{hi:.3f})" for lo, hi in zip(self.lows, self.highs))
        return f"Zone({parts})"
