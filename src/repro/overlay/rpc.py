"""Request/response RPC over simulated UDP.

Both the CAN inter-node protocol and the host<->rendezvous protocol need
"send a message, wait for the reply, retry on timeout" semantics. This
module provides that once, so protocol code stays declarative:

* :meth:`RpcEndpoint.register` — install a handler for a message kind;
  the handler returns the reply body (or a generator process that yields
  and then returns it).
* :meth:`RpcEndpoint.call` — process body: send, await matching reply.
* :meth:`RpcEndpoint.notify` — fire-and-forget.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.net.addresses import IPv4Address
from repro.net.packet import Payload
from repro.net.udp import UdpSocket

__all__ = ["RpcEndpoint", "RpcError", "RpcTimeout"]

ENVELOPE_OVERHEAD = 24  # rpc id + kind tag + framing bytes on the wire


class RpcError(Exception):
    """Remote handler signalled an error."""


class RpcTimeout(Exception):
    """No reply within the deadline (after retries)."""


@dataclass(frozen=True)
class _Envelope:
    rpc_id: int
    kind: str
    body: Any
    is_reply: bool
    is_error: bool = False


def _body_size(body: Any) -> int:
    size = getattr(body, "size", None)
    if size is not None:
        return int(size)
    return 64  # default estimate for small control bodies


class RpcEndpoint:
    """RPC service bound to one UDP socket."""

    def __init__(self, stack, sock: UdpSocket, name: str = "rpc",
                 own_loop: bool = True,
                 retry_concurrency: Optional[int] = None) -> None:
        """With ``own_loop=False`` the endpoint does not read the socket;
        the owner demultiplexes datagrams and feeds RPC envelopes through
        :meth:`handle_datagram` (the WAVNet driver shares one socket
        between RPC control traffic and the tunnel data plane, so they
        ride the same NAT mapping).

        ``retry_concurrency`` caps concurrent retry probes *per
        destination*: when that many retries are already in flight to a
        peer, further retry attempts from this endpoint wait for one of
        the active probes to resolve instead of sending — a registration
        storm against a dead peer stays N probes, not N×callers."""
        self.stack = stack
        self.sock = sock
        self.name = name
        self.handlers: dict[str, Callable] = {}
        self._next_id = 1
        self._waiting: dict[int, Any] = {}  # rpc_id -> Event
        self.calls_made = 0
        self.requests_served = 0
        self.retry_concurrency = retry_concurrency
        self._retry_inflight: dict[tuple, int] = {}  # dest -> live probes
        self._retry_gates: dict[tuple, Any] = {}  # dest -> Event
        metrics = stack.sim.metrics.scope(f"{name}.rpc")
        self._m_calls = metrics.counter("calls")
        self._m_retries = metrics.counter("retries")
        self._m_timeouts = metrics.counter("timeouts")
        self._m_coalesced = metrics.counter("retries_coalesced")
        self._m_served = metrics.counter("served")
        self._own_loop = own_loop
        self._dispatcher = None
        if own_loop:
            self._dispatcher = stack.sim.process(self._dispatch_loop(), name=f"rpc:{name}")

    # -- lifecycle --------------------------------------------------------
    def shutdown(self) -> None:
        """Stop reading the socket and close it (component crash/stop).
        In-flight calls time out naturally; handlers stay registered so
        :meth:`rebind` can bring the endpoint back."""
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("shutdown")
            self._dispatcher.defuse()
            self._dispatcher = None
        self.sock.close()

    def rebind(self, sock: UdpSocket) -> None:
        """Attach a fresh socket after :meth:`shutdown` (component
        restore); restarts the dispatch loop if this endpoint owns one."""
        self.sock = sock
        if self._own_loop and (self._dispatcher is None or not self._dispatcher.is_alive):
            self._dispatcher = self.stack.sim.process(
                self._dispatch_loop(), name=f"rpc:{self.name}")

    # -- server side ------------------------------------------------------
    def register(self, kind: str, handler: Callable) -> None:
        """Handler signature: ``handler(body, src_ip, src_port) -> reply``.
        A generator handler is run as a process; its return value is the
        reply. Returning None sends an empty ack."""
        if kind in self.handlers:
            raise RuntimeError(f"duplicate RPC handler for {kind!r}")
        self.handlers[kind] = handler

    def _dispatch_loop(self):
        from repro.sim.engine import Interrupt
        try:
            while True:
                payload, src_ip, src_port = yield self.sock.recvfrom()
                self.handle_datagram(payload, src_ip, src_port)
        except Interrupt:
            return

    def handle_datagram(self, payload: Payload, src_ip: IPv4Address, src_port: int) -> bool:
        """Process one datagram; returns False if it was not an RPC envelope."""
        env = payload.data
        if not isinstance(env, _Envelope):
            return False
        if env.is_reply:
            waiter = self._waiting.pop(env.rpc_id, None)
            if waiter is not None and not waiter.triggered:
                if env.is_error:
                    waiter.fail(RpcError(env.body))
                    waiter.defuse()
                else:
                    waiter.succeed(env.body)
            return True
        handler = self.handlers.get(env.kind)
        if handler is None:
            self._reply(env, src_ip, src_port, f"no handler for {env.kind!r}", error=True)
            return True
        self.requests_served += 1
        self._m_served.add()
        try:
            result = handler(env.body, src_ip, src_port)
        except Exception as exc:  # handler bug or modeled failure
            self._reply(env, src_ip, src_port, repr(exc), error=True)
            return True
        if inspect.isgenerator(result):
            self.stack.sim.process(self._async_reply(result, env, src_ip, src_port),
                                   name=f"rpc-handler:{env.kind}")
        else:
            self._reply(env, src_ip, src_port, result)
        return True

    def _async_reply(self, gen, env: _Envelope, src_ip: IPv4Address, src_port: int):
        try:
            result = yield self.stack.sim.process(gen)
        except Exception as exc:  # deliberate broad catch: errors cross the wire
            self._reply(env, src_ip, src_port, repr(exc), error=True)
            return
        self._reply(env, src_ip, src_port, result)

    def _reply(self, env: _Envelope, dst_ip: IPv4Address, dst_port: int,
               body: Any, error: bool = False) -> None:
        if self.sock.closed:
            return  # endpoint shut down while the handler ran
        out = _Envelope(env.rpc_id, env.kind, body, is_reply=True, is_error=error)
        self.sock.sendto(dst_ip, dst_port,
                         Payload(ENVELOPE_OVERHEAD + _body_size(body), data=out, kind="rpc"))

    # -- client side ----------------------------------------------------------
    def notify(self, dst_ip: IPv4Address, dst_port: int, kind: str, body: Any) -> None:
        if self.sock.closed:
            return  # component crashed under us: fire-and-forget goes nowhere
        env = _Envelope(self._alloc_id(), kind, body, is_reply=False)
        self.sock.sendto(dst_ip, dst_port,
                         Payload(ENVELOPE_OVERHEAD + _body_size(body), data=env, kind="rpc"))

    def _alloc_id(self) -> int:
        rpc_id = self._next_id
        self._next_id += 1
        return rpc_id

    def call(self, dst_ip: IPv4Address, dst_port: int, kind: str, body: Any,
             timeout: float = 2.0, retries: int = 3):
        """Process body: returns the reply body; raises RpcTimeout/RpcError."""
        sim = self.stack.sim
        dest = (dst_ip, dst_port)
        last_exc: Optional[Exception] = None
        for attempt in range(retries):
            if self.sock.closed:
                # Our component crashed mid-call; surface as a timeout so
                # callers' existing retry/abort paths handle it.
                raise RpcTimeout(f"{kind}: local endpoint closed")
            gated = attempt > 0 and self.retry_concurrency is not None
            if gated and self._retry_inflight.get(dest, 0) >= self.retry_concurrency:
                # This peer already has the full complement of retry
                # probes in flight; piggyback on one instead of adding
                # another packet to the storm. The gate fires when any
                # active probe resolves (reply or timeout), after which
                # we re-attempt (and may send if a slot is free).
                self._m_coalesced.add()
                gate = self._retry_gates.get(dest)
                if gate is None or gate.triggered:
                    gate = self._retry_gates[dest] = sim.event()
                yield sim.any_of([gate, sim.timeout(timeout)])
                last_exc = RpcTimeout(f"{kind} to {dst_ip}:{dst_port} (coalesced)")
                continue
            rpc_id = self._alloc_id()
            env = _Envelope(rpc_id, kind, body, is_reply=False)
            waiter = sim.event()
            self._waiting[rpc_id] = waiter
            self.calls_made += 1
            if attempt == 0:
                self._m_calls.add()
            else:
                self._m_retries.add()
                if gated:
                    self._retry_inflight[dest] = self._retry_inflight.get(dest, 0) + 1
            self.sock.sendto(dst_ip, dst_port,
                             Payload(ENVELOPE_OVERHEAD + _body_size(body), data=env, kind="rpc"))
            deadline = sim.timeout(timeout)
            try:
                yield sim.any_of([waiter, deadline])
            finally:
                if gated:
                    self._release_retry(dest)
            if waiter.processed:
                return waiter.value  # may raise RpcError via the fail path
            if waiter.triggered:
                # failed with RpcError before processing: surface it
                return waiter.value
            self._waiting.pop(rpc_id, None)
            last_exc = RpcTimeout(f"{kind} to {dst_ip}:{dst_port}")
        self._m_timeouts.add()
        raise last_exc

    def _release_retry(self, dest: tuple) -> None:
        n = self._retry_inflight.get(dest, 0)
        if n <= 1:
            self._retry_inflight.pop(dest, None)
        else:
            self._retry_inflight[dest] = n - 1
        gate = self._retry_gates.pop(dest, None)
        if gate is not None and not gate.triggered:
            gate.succeed(None)

    def close(self) -> None:
        self.sock.close()
