"""Rendezvous overlay: CAN (Content-Addressable Network) + host registry.

The paper organizes rendezvous servers in a CAN (Ratnasamy et al. 2001):
each server owns a zone of a d-dimensional coordinate space; host
resource states map to points; queries route greedily through zone
neighbors. On top of the CAN sit the WAVNet-specific services: host
registration, connection brokering (Fig 3 steps 1-4), and the distance
locator used by the grouping strategy (§II.D).
"""

from repro.overlay.can import CanNode
from repro.overlay.rendezvous import RendezvousServer
from repro.overlay.resources import ResourceRecord, ResourceSpec
from repro.overlay.space import Point, Zone

__all__ = ["CanNode", "Point", "RendezvousServer", "ResourceRecord", "ResourceSpec", "Zone"]
