"""Deprecated: measurement probes moved to :mod:`repro.obs.metrics`.

This stub remains for one release so third-party imports keep working.
Import ``Counter`` / ``IntervalRate`` / ``TimeSeries`` / ``record_any``
from :mod:`repro.obs` (or use ``sim.metrics.counter("path")`` and
friends so measurements are discoverable by dotted path).
"""

import warnings

from repro.obs.metrics import Counter, IntervalRate, TimeSeries, record_any

__all__ = ["Counter", "IntervalRate", "TimeSeries", "record_any"]

warnings.warn(
    "repro.sim.monitor is deprecated; import from repro.obs instead",
    DeprecationWarning,
    stacklevel=2,
)
