"""Measurement probes — compatibility shim over :mod:`repro.obs`.

The probe classes moved into the observability spine
(:mod:`repro.obs.metrics`), where they are also addressable through the
simulator's hierarchical :class:`~repro.obs.metrics.MetricsRegistry`
(``sim.metrics``).  Existing imports keep working::

    from repro.sim.monitor import Counter, IntervalRate, TimeSeries

New code should prefer ``sim.metrics.counter("host.driver.pulse.tx")``
and friends so measurements are discoverable by dotted path.
"""

from repro.obs.metrics import Counter, IntervalRate, TimeSeries, record_any

__all__ = ["Counter", "IntervalRate", "TimeSeries", "record_any"]
