"""Measurement probes: time series, counters, and interval rate meters.

Benchmarks observe the simulation exclusively through these probes, which
keeps measurement code out of the protocol implementations.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.sim.engine import Simulator

__all__ = ["Counter", "IntervalRate", "TimeSeries"]


class TimeSeries:
    """Append-only (time, value) log with NumPy export and resampling."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, value: float) -> None:
        self._times.append(self.sim.now)
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def mean(self) -> float:
        return float(np.mean(self._values)) if self._values else float("nan")

    def max(self) -> float:
        return float(np.max(self._values)) if self._values else float("nan")

    def min(self) -> float:
        return float(np.min(self._values)) if self._values else float("nan")

    def between(self, t0: float, t1: float) -> "tuple[np.ndarray, np.ndarray]":
        """Samples with t0 <= time < t1, as (times, values) arrays."""
        t = self.times
        mask = (t >= t0) & (t < t1)
        return t[mask], self.values[mask]

    def resample(self, interval: float, t0: float | None = None, t1: float | None = None) -> "tuple[np.ndarray, np.ndarray]":
        """Mean value per ``interval``-wide bucket over [t0, t1).

        Buckets with no samples yield NaN so gaps (e.g. VM downtime)
        remain visible in figure-shaped output.
        """
        t, v = self.times, self.values
        if t.size == 0:
            return np.empty(0), np.empty(0)
        lo = t[0] if t0 is None else t0
        hi = t[-1] + interval if t1 is None else t1
        edges = np.arange(lo, hi + interval * 0.5, interval)
        if edges.size < 2:
            return np.empty(0), np.empty(0)
        idx = np.digitize(t, edges) - 1
        out = np.full(edges.size - 1, np.nan)
        for b in range(edges.size - 1):
            sel = idx == b
            if sel.any():
                out[b] = v[sel].mean()
        return edges[:-1], out


class Counter:
    """Named monotonically increasing counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class IntervalRate:
    """Accumulates a quantity (e.g. bytes) and reports per-interval rates.

    Used for netperf-style interim result reporting: call :meth:`add` on
    every delivery, :meth:`snapshot` from a periodic polling process.
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.total = 0.0
        self._last_total = 0.0
        self._last_time = sim.now
        self.series = TimeSeries(sim, name=f"{name}.rate")

    def add(self, amount: float) -> None:
        self.total += amount

    def snapshot(self) -> float:
        """Rate (units/second) since the previous snapshot; records it."""
        now = self.sim.now
        dt = now - self._last_time
        delta = self.total - self._last_total
        rate = delta / dt if dt > 0 else 0.0
        self._last_total = self.total
        self._last_time = now
        self.series.record(rate)
        return rate

    def overall_rate(self, since: float = 0.0) -> float:
        dt = self.sim.now - since
        return self.total / dt if dt > 0 else 0.0


def record_any(sink: Any, value: float) -> None:
    """Duck-typed helper: record into TimeSeries / add into Counter-likes."""
    if hasattr(sink, "record"):
        sink.record(value)
    elif hasattr(sink, "add"):
        sink.add(value)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unsupported sink {type(sink).__name__}")
