"""Event loop, events, and generator-based processes.

The design mirrors SimPy's proven semantics but is intentionally smaller:

* :class:`Event` — one-shot waitable with a value or an exception.
* :class:`Timeout` — event that fires after a fixed delay.
* :class:`Process` — wraps a generator; each ``yield`` must produce an
  :class:`Event` (or a :class:`Process`, which waits for termination).
* :class:`AnyOf` / :class:`AllOf` — composite waits.
* :class:`Interrupt` — exception thrown into a waiting process by
  :meth:`Process.interrupt`.

Processes resume in deterministic order: the calendar is keyed by
``(time, seq)`` where ``seq`` increases monotonically with every schedule
operation.

Two calendar fast paths keep the per-frame hot loops cheap:

* :meth:`Simulator.call_in` / :meth:`Simulator.call_at` push a bare
  callable onto the calendar — no :class:`Event`, no callback list, no
  lambda. The entry is ``(time, seq, None, fn)``; ``(time, seq)`` stays
  the ordering key, so fast-lane entries interleave deterministically
  with events.
* :meth:`Simulator.timer` returns a tiny cancelable :class:`Timer`
  handle. Cancelation is *lazy*: the heap entry stays put but is skipped
  (without advancing the clock or counting as a dispatch) when popped,
  and the calendar is compacted once canceled entries dominate — so
  rearmed keepalives, interrupted sleeps, and TCP retransmit timers do
  not leak calendar entries.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator, Iterable
from time import perf_counter
from typing import Any

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Timer",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (not for model errors)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    ``cause`` carries an arbitrary payload supplied by the interrupter
    (e.g. the reason a migration was aborted).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event lifecycle states.
_PENDING = 0
_TRIGGERED = 1  # scheduled on the calendar, callbacks not yet run
_PROCESSED = 2  # callbacks have run
_CANCELLED = 3  # scheduled, then canceled; skipped when popped


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* with either a value (:meth:`succeed`) or an
    exception (:meth:`fail`); its callbacks then run at the current
    simulation time. Triggering twice is an error — events are one-shot.
    """

    __slots__ = ("sim", "callbacks", "_state", "_value", "_exc", "_defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._state = _PENDING
        self._value: Any = None
        self._exc: BaseException | None = None
        # A failed event whose exception was delivered to (or absorbed by)
        # some waiter is "defused"; undefused failures crash the run so
        # model bugs cannot silently vanish.
        self._defused = False

    # -- inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value/exception (callbacks may be pending)."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering ---------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._state = _TRIGGERED
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exc!r}")
        self._state = _TRIGGERED
        self._exc = exc
        self.sim._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so it does not crash the run."""
        self._defused = True

    # -- internal -----------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._state = _PROCESSED
        assert callbacks is not None
        for cb in callbacks:
            cb(self)
        if self._exc is not None and not self._defused:
            raise self._exc

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately (same semantics SimPy users rely on).
        """
        if self.callbacks is None:
            cb(self)
        else:
            self.callbacks.append(cb)


class Timeout(Event):
    """Event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._state = _TRIGGERED
        self._value = value
        sim._schedule(self, delay=delay)

    def cancel(self) -> None:
        """Lazily cancel: the calendar entry stays on the heap but is
        skipped when popped (no clock advance, no dispatch counted).

        Only legal when the caller owns every waiter — canceling a
        timeout someone else still waits on would strand that waiter.
        A timeout whose callbacks already ran is left untouched.
        """
        if self._state == _TRIGGERED:
            self._state = _CANCELLED
            self.callbacks = None  # drop waiter refs now, not at fire time
            self._value = None
            self.sim._note_cancel()


class Timer:
    """Cancelable fast-lane timer: runs ``fn()`` at ``when`` unless
    canceled first. Far cheaper than ``Timeout`` + callback — no Event
    state machine, no callback list — and a canceled timer is lazily
    skipped (and eventually compacted away) instead of dispatched.
    Created via :meth:`Simulator.timer`.
    """

    __slots__ = ("sim", "fn", "when")

    def __init__(self, sim: "Simulator", fn: Callable[[], None], when: float) -> None:
        self.sim = sim
        self.fn: Callable[[], None] | None = fn
        self.when = when

    @property
    def active(self) -> bool:
        """True until the timer fires or is canceled."""
        return self.fn is not None

    def cancel(self) -> None:
        if self.fn is not None:
            self.fn = None
            self.sim._note_cancel()


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        self._n_done = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            if ev._exc is not None:
                ev.defuse()
            return
        if ev._exc is not None:
            ev.defuse()
            self.fail(ev._exc)
            self._cancel_pending_timeouts()
            return
        self._n_done += 1
        if self._satisfied():
            self.succeed(self._collect())
            self._cancel_pending_timeouts()

    def _cancel_pending_timeouts(self) -> None:
        """Once the condition is decided, losing Timeout children whose
        only waiter is this condition are dead weight on the calendar —
        cancel them (the ``any_of([data, deadline])`` pattern otherwise
        leaks one calendar entry per iteration)."""
        for ev in self.events:
            if (ev.__class__ is Timeout and ev._state == _TRIGGERED
                    and ev.callbacks is not None and len(ev.callbacks) == 1):
                ev.cancel()

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.processed and ev._exc is None}


class AnyOf(_Condition):
    """Fires when the first child event succeeds (or any fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1


class AllOf(_Condition):
    """Fires when every child event has succeeded (or any fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done == len(self.events)


class Process(Event):
    """A running generator; also an event that fires on termination.

    The wrapped generator yields :class:`Event` instances. When a yielded
    event succeeds, its value is sent back into the generator; when it
    fails, the exception is thrown in. ``yield`` on another
    :class:`Process` waits for that process to terminate.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        # Bootstrap: resume once at the current time.
        boot = Event(sim)
        self._waiting_on = boot
        boot.add_callback(self._resume)
        boot.succeed(None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is not waiting (i.e. scheduled to resume right now) is
        delivered before its next resume.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name!r}")
        target = self._waiting_on
        if target is not None:
            self._waiting_on = None
            # The abandoned wait: if it is a Timeout nobody else waits
            # on, cancel it so the calendar does not accumulate dead
            # entries (keepalive/punch loops interrupt these constantly).
            if (target.__class__ is Timeout and target.callbacks is not None
                    and len(target.callbacks) == 1):
                target.cancel()
        self.sim.call_in(0.0, lambda: self._throw_interrupt(cause))

    def _throw_interrupt(self, cause: Any) -> None:
        if not self.is_alive:
            return  # died between interrupt() and delivery
        self._step(lambda: self.generator.throw(Interrupt(cause)))

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wake-up (we were interrupted away from this event)
        self._waiting_on = None
        if event._exc is not None:
            event.defuse()
            exc = event._exc
            self._step(lambda: self.generator.throw(exc))
        else:
            value = event._value
            self._step(lambda: self.generator.send(value))

    def _step(self, advance: Callable[[], Any]) -> None:
        sim = self.sim
        prev = sim._active_process
        sim._active_process = self
        # Profiling is opt-in: the two perf_counter() calls per resume
        # cost more than most resumes do, so they are gated off unless
        # sim.profile.enable() was called.
        profiling = sim.profile.enabled
        wall = perf_counter() if profiling else 0.0
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # Generator re-raised the interrupt without handling it:
            # treat as process failure.
            self.fail(exc)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            sim._active_process = prev
            if profiling:
                sim.profile.account(self.name, perf_counter() - wall)
        if target is self:
            raise SimulationError(f"process {self.name!r} cannot wait on itself")
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; yield Event/Process only"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class Simulator:
    """Deterministic discrete-event simulator.

    Usage::

        sim = Simulator(seed=7)

        def hello(sim):
            yield sim.timeout(1.0)
            return "done"

        proc = sim.process(hello(sim))
        sim.run()
        assert sim.now == 1.0 and proc.value == "done"
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        # Calendar entries are heap tuples ordered by (time, seq):
        #   (time, seq, event)           — a triggered Event
        #   (time, seq, None, callable)  — fast-lane call_in/call_at/timer
        # seq is unique, so comparison never reaches the third element
        # and the two shapes can share one heap.
        self._calendar: list[tuple] = []
        self._seq = 0
        self._cancelled = 0  # canceled entries still parked on the heap
        self._active_process: Process | None = None
        self.events_dispatched = 0
        from repro.obs import MetricsRegistry, StepProfiler, Tracer
        from repro.sim.lifecycle import ComponentRegistry
        from repro.sim.rng import RngRegistry

        self.rng = RngRegistry(seed)
        # Observability spine: one registry/tracer/profiler per run.
        self.metrics = MetricsRegistry(self)
        self.trace = Tracer(self)
        self.profile = StepProfiler()
        # Failure plane: every lifecycle-aware component registers here.
        self.components = ComponentRegistry(self)

    # -- factories ----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str | None = None) -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Fast lane: run ``fn()`` at absolute time ``when`` (>= now).

        Pushes the bare callable onto the calendar — no Event, no
        callback list. Not cancelable; use :meth:`timer` for that.
        """
        if when < self.now:
            raise SimulationError(f"call_at({when}) is in the past (now={self.now})")
        self._seq += 1
        heapq.heappush(self._calendar, (when, self._seq, None, fn))

    def call_in(self, delay: float, fn: Callable[[], None]) -> None:
        """Fast lane: run ``fn()`` after ``delay`` time units (see
        :meth:`call_at`)."""
        if delay < 0:
            raise SimulationError(f"negative call_in delay {delay!r}")
        self._seq += 1
        heapq.heappush(self._calendar, (self.now + delay, self._seq, None, fn))

    def timer(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Cancelable fast lane: run ``fn()`` after ``delay`` unless the
        returned :class:`Timer` is canceled first."""
        if delay < 0:
            raise SimulationError(f"negative timer delay {delay!r}")
        t = Timer(self, fn, self.now + delay)
        self._seq += 1
        heapq.heappush(self._calendar, (t.when, self._seq, None, t))
        return t

    # -- scheduling ---------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._calendar, (self.now + delay, self._seq, event))

    def _note_cancel(self) -> None:
        """Bookkeeping for lazy cancelation; compacts the calendar when
        canceled entries dominate so timer churn cannot grow the heap
        without bound."""
        self._cancelled += 1
        if self._cancelled >= 64 and self._cancelled * 2 > len(self._calendar):
            self._compact()

    def _compact(self) -> None:
        live = []
        for entry in self._calendar:
            item = entry[2]
            if item is None:
                fn = entry[3]
                if fn.__class__ is Timer and fn.fn is None:
                    continue
            elif item._state == _CANCELLED:
                continue
            live.append(entry)
        heapq.heapify(live)  # (time, seq) keys are untouched: order is preserved
        self._calendar = live
        self._cancelled = 0

    # -- execution ----------------------------------------------------
    def peek(self) -> float:
        """Time of the next live entry, or ``inf`` if none remain.

        Canceled entries reached at the head are popped here (lazy
        removal) so the reported time is always a real upcoming event.
        """
        cal = self._calendar
        while cal:
            entry = cal[0]
            item = entry[2]
            if item is None:
                fn = entry[3]
                if fn.__class__ is not Timer or fn.fn is not None:
                    return entry[0]
            elif item._state != _CANCELLED:
                return entry[0]
            heapq.heappop(cal)
            self._cancelled -= 1
        return float("inf")

    def step(self) -> None:
        """Dispatch the next live calendar entry.

        Canceled entries encountered on the way are discarded without
        advancing the clock or counting as a dispatch; if only canceled
        entries remained, the calendar drains quietly.
        """
        cal = self._calendar
        if not cal:
            raise SimulationError("step() on an empty calendar")
        pop = heapq.heappop
        while cal:
            entry = pop(cal)
            item = entry[2]
            if item is None:
                fn = entry[3]
                if fn.__class__ is Timer:
                    cb = fn.fn
                    if cb is None:
                        self._cancelled -= 1
                        continue
                    fn.fn = None
                    fn = cb
                self.now = entry[0]
                self.events_dispatched += 1
                fn()
                return
            if item._state == _CANCELLED:
                self._cancelled -= 1
                continue
            self.now = entry[0]
            self.events_dispatched += 1
            item._run_callbacks()
            return

    def run_coro(self, coro: Generator[Event, Any, Any] | Process,
                 name: str | None = None) -> Any:
        """Schedule a process coroutine, run until it terminates, and
        return its value — replaces the ``run(until=sim.process(coro))``
        boilerplate. Accepts an already-created :class:`Process` too."""
        proc = coro if isinstance(coro, Process) else self.process(coro, name=name)
        return self.run(until=proc)

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the calendar drains, ``until`` time passes, or an
        ``until`` event triggers (its value is returned)."""
        if isinstance(until, Event):
            stop = until
            while not stop.triggered:
                if not self._calendar:
                    raise SimulationError(
                        "run(until=event): calendar drained before event triggered"
                    )
                self.step()
            if stop._exc is not None:
                # The awaited event failed: surface the failure to the
                # caller instead of silently returning None (its waiters,
                # if any, already defused it).
                raise stop._exc
            return stop._value
        horizon = float("inf") if until is None else float(until)
        if horizon < self.now:
            raise SimulationError(f"run(until={horizon}) is in the past (now={self.now})")
        # peek() purges canceled heads, so the horizon check always sees
        # a live entry and step() dispatches exactly that entry. peek()
        # returning inf means no live events remain (even with until=None,
        # where horizon is also inf — hence the explicit inf check).
        inf = float("inf")
        while True:
            t = self.peek()
            if t == inf or t > horizon:
                break
            self.step()
        if horizon != float("inf"):
            self.now = horizon
        return None

    def run_window(self, end: float) -> None:
        """Dispatch every live entry with time strictly below ``end``,
        then set ``now = end`` — the half-open window [now, end) used by
        conservative PDES synchronization.

        Unlike :meth:`run`, entries at exactly ``end`` are *not*
        dispatched: they belong to the next window (or to the final
        inclusive ``run(until=horizon)`` pass), so a partitioned run
        windows its way to the horizon without double- or
        never-dispatching boundary events.
        """
        end = float(end)
        if end < self.now:
            raise SimulationError(f"run_window({end}) is in the past (now={self.now})")
        inf = float("inf")
        while True:
            t = self.peek()
            if t == inf or t >= end:
                break
            self.step()
        self.now = end
