"""Site-partitioned parallel discrete-event simulation (PDES).

One big scenario still runs on one core: ``repro.exp`` shards across
*runs*, not inside a run. This module partitions a single simulation by
WAN site — every :class:`~repro.net.wan.WanCloud` attachment point (and
the hosts/NAT/links behind it) belongs to exactly one *partition*, each
partition runs its own :class:`~repro.sim.engine.Simulator` calendar in
its own OS process, and the partitions synchronize with conservative
time windows.

**Lookahead.** A frame sent at time ``t`` from a site in partition A to
a site in partition B arrives at ``t + latency(src, dst)``, and every
cross-partition latency is at least ``L`` — the minimum one-way WAN
latency between any local/remote site pair (the cloud's per-pair
latency table, :meth:`WanCloud.min_remote_latency`). So events inside
the half-open window ``[W, W + L)`` can never be affected by frames the
*other* partitions send inside that same window: those frames deliver
at ``>= W + L``. Each partition therefore runs its calendar up to the
window end (:meth:`Simulator.run_window` — strictly-before semantics),
all partitions exchange the frames captured at their cloud boundary
(:meth:`WanCloud.drain_outbox`), injections are scheduled with
:meth:`WanCloud.inject_remote_frame`, and the loop advances to the next
window. A final *inclusive* ``run(until=horizon)`` dispatches events at
exactly the horizon, mirroring the serial run.

**Determinism.** The merged result is byte-identical to the serial run:

* deliver times are computed with exactly the serial float expression
  (``send_time + latency``), on the sender for unicast and on the
  receiver for floods (the latency table is replicated);
* injections are sorted by ``(deliver_time, send_time, src_partition,
  sender_seq, flood_sub_index)`` before scheduling, so calendar ties at
  one deliver time resolve identically on every run;
* the receiver learns the source MAC at injection time — no local host
  can have addressed that MAC before the first frame from it arrives,
  so unicast/flood decisions match the serial cloud;
* every component draws from named RNG streams
  (:class:`~repro.sim.rng.RngRegistry`), so a component sees the same
  sequence whether or not unrelated components share its process;
* ``frames_carried`` counts on the sending side only, and a remote
  delivery costs exactly one dispatched calendar entry on the receiver
  (none on the sender) — matching the serial ``call_in`` per delivery.

**Scenario contract.** A pdes-capable scenario takes ``partitions=``
as an ordinary spec parameter plus a private ``_partition=None`` hook::

    @scenario("my_pdes_scenario")
    def my_pdes_scenario(seed=0, partitions=1, ..., _partition=None):
        ctx = _partition or PartitionContext(partitions)
        sim = Simulator(seed=seed)
        ... build groups; ctx.owns(g) decides local build vs
            cloud.declare_remote_site(site, ctx.owner_of(g)) ...
        ctx.run(sim, cloud, horizon)
        shards = {g: collect(g) for g in owned_groups}
        if ctx.serial:
            return sim, my_merger(shards)
        return sim, shards

    @pdes_merger("my_pdes_scenario")
    def my_merger(shards): ...

``run_spec`` (serial) never passes ``_partition`` — the scenario builds
every group in one process and merges its own shards, running exactly
the code path the workers run. :func:`run_partitioned` launches one
worker per partition and applies the registered merger to the union of
the worker shards, so serial and partitioned envelopes are assembled by
the same functions.
"""

from __future__ import annotations

import json
import multiprocessing
from time import perf_counter
from typing import Any, Callable, Optional

from repro.sim.engine import SimulationError

__all__ = [
    "PartitionContext",
    "PdesError",
    "execute_spec",
    "get_merger",
    "has_merger",
    "merge_trace_records",
    "pdes_merger",
    "run_partitioned",
]


class PdesError(RuntimeError):
    """A partitioned run failed (worker error, protocol violation)."""


# -- merger registry ----------------------------------------------------

_MERGERS: dict[str, Callable[[dict], dict]] = {}


def pdes_merger(scenario_name: str) -> Callable[[Callable], Callable]:
    """Register the shard-merge function for a pdes-capable scenario.

    The merger maps ``{group_index: shard_payload}`` (all groups) to the
    scenario's final payload dict. The *scenario itself* calls it in
    serial mode; :func:`run_partitioned` calls it on the union of the
    worker shards — one merge implementation, two callers.
    """

    def deco(fn: Callable) -> Callable:
        existing = _MERGERS.get(scenario_name)
        if existing is not None and existing is not fn:
            raise ValueError(f"merger for {scenario_name!r} already registered")
        _MERGERS[scenario_name] = fn
        return fn

    return deco


def get_merger(scenario_name: str) -> Callable[[dict], dict]:
    from repro.exp.spec import ensure_scenarios_loaded

    ensure_scenarios_loaded()
    try:
        return _MERGERS[scenario_name]
    except KeyError:
        raise KeyError(
            f"scenario {scenario_name!r} has no registered pdes merger"
        ) from None


def has_merger(scenario_name: str) -> bool:
    from repro.exp.spec import ensure_scenarios_loaded

    ensure_scenarios_loaded()
    return scenario_name in _MERGERS


# -- partition context --------------------------------------------------


class PartitionContext:
    """Which site-groups this process owns, plus the window-loop hooks.

    ``partition_id is None`` means *serial*: one process owns every
    group and :meth:`run` is a plain ``sim.run(until=horizon)``.
    Group ownership is round-robin (``group % partitions``) so serial
    and partitioned builds agree without coordination.
    """

    def __init__(self, partitions: int, partition_id: Optional[int] = None,
                 down=None, up=None) -> None:
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        if partition_id is not None and not 0 <= partition_id < partitions:
            raise ValueError(f"partition_id {partition_id} out of range")
        self.partitions = partitions
        self.partition_id = partition_id
        self._down = down  # coordinator -> this worker
        self._up = up      # this worker -> coordinator
        self.windows_run = 0
        self.frames_exchanged = 0

    @property
    def serial(self) -> bool:
        return self.partition_id is None

    def owner_of(self, group_index: int) -> int:
        return group_index % self.partitions

    def owns(self, group_index: int) -> bool:
        return self.serial or self.owner_of(group_index) == self.partition_id

    def owned_groups(self, n_groups: int) -> list[int]:
        return [g for g in range(n_groups) if self.owns(g)]

    # -- window loop ----------------------------------------------------
    def run(self, sim, cloud, horizon: float) -> None:
        """Run ``sim`` to ``horizon``: plain run when serial, the
        conservative window-barrier loop when partitioned."""
        horizon = float(horizon)
        if self.serial:
            sim.run(until=horizon)
            return
        self._up.put(("hello", self.partition_id, cloud.min_remote_latency()))
        msg = self._down.get()
        if msg[0] != "lookahead":  # pragma: no cover - protocol bug
            raise PdesError(f"expected lookahead, got {msg[0]!r}")
        lookahead = float(msg[1])
        if not lookahead > 0.0:
            raise PdesError(
                f"non-positive PDES lookahead {lookahead}: cross-partition "
                "site pairs need a positive one-way WAN latency")
        window = 0
        while sim.now < horizon:
            sim.run_window(min(sim.now + lookahead, horizon))
            self._exchange(sim, cloud, window)
            self.windows_run += 1
            window += 1
        # Events at exactly the horizon dispatch once, inclusively, just
        # as the serial run's final run(until=horizon) does.
        sim.run(until=horizon)

    def _exchange(self, sim, cloud, window: int) -> None:
        """Window barrier: ship this window's boundary captures to the
        coordinator, receive the frames addressed to us, and schedule
        them in the deterministic injection order."""
        self._up.put(("window", window, self.partition_id,
                      cloud.drain_outbox()))
        msg = self._down.get()
        if msg[0] == "abort":
            raise PdesError(f"coordinator aborted: {msg[1]}")
        if msg[0] != "batch" or msg[1] != window:  # pragma: no cover
            raise PdesError(f"expected batch {window}, got {msg[:2]!r}")
        inject: list[tuple] = []
        for src_pid, deliver, send, src_site, seq, dst_site, frame in msg[2]:
            if dst_site is None:
                # Flood record: expand over our attachment points with
                # locally computed (table-replicated) latencies.
                for sub, (site, when) in enumerate(
                        cloud.expand_flood(src_site, send)):
                    inject.append((when, send, src_pid, seq, sub,
                                   src_site, site, frame))
            else:
                inject.append((deliver, send, src_pid, seq, 0,
                               src_site, dst_site, frame))
        inject.sort(key=lambda r: r[:5])
        for when, send, _src_pid, _seq, _sub, src_site, dst_site, frame in inject:
            if when < sim.now:
                raise SimulationError(
                    f"lookahead violation: frame {src_site}->{dst_site} "
                    f"delivers at {when} inside window ending {sim.now}")
            cloud.inject_remote_frame(src_site, dst_site, when, frame)
        self.frames_exchanged += len(inject)


# -- worker -------------------------------------------------------------


def _partition_worker(spec_dict: dict, partition_id: int, partitions: int,
                      down, up) -> None:
    """Worker-process entry: run the scenario as one partition and ship
    the shard (payload pieces + observability exports) back."""
    try:
        from repro.exp.spec import ExperimentSpec

        spec = ExperimentSpec.from_dict(spec_dict)
        fn = spec.resolve()
        ctx = PartitionContext(partitions, partition_id, down=down, up=up)
        result = fn(seed=spec.seed, _partition=ctx, **spec.params)
        if not (isinstance(result, tuple) and len(result) == 2):
            raise TypeError(
                f"pdes scenario {spec.scenario!r} must return (sim, shards)")
        sim, shards = result
        if not isinstance(shards, dict):
            raise TypeError(
                f"pdes scenario {spec.scenario!r} returned "
                f"{type(shards).__name__} shards, expected dict")
        up.put(("done", partition_id, {
            "shards": shards,
            "metrics": sim.metrics.export(spec.metrics) if spec.metrics else {},
            "traces": sim.trace.export(spec.traces) if spec.traces else [],
            "metric_paths": sim.metrics.paths(),
            "sim_now": sim.now,
            "events_dispatched": sim.events_dispatched,
            "n_trace_records": len(sim.trace),
        }))
    except BaseException as exc:  # noqa: BLE001 - crosses process boundary
        import traceback

        up.put(("error", partition_id,
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"))


# -- envelope merging ---------------------------------------------------


def _trace_time(record: dict) -> float:
    """Log-order key: spans enter the log at their end time."""
    return record["t1"] if record.get("kind") == "span" else record["t"]


def merge_trace_records(per_partition: list[list[dict]]) -> list[dict]:
    """Time-ordered merge of per-partition trace logs. Each log is
    already nondecreasing in time (records append at emission), so a
    stable sort preserves intra-partition order; cross-partition ties
    order by partition id (pdes scenarios keep cross-partition record
    times distinct)."""
    merged = [r for records in per_partition for r in records]
    merged.sort(key=_trace_time)
    return merged


def _merge_metrics(per_partition: list[dict]) -> dict:
    """Union of the partitions' selected metric exports. Selected paths
    must be partition-disjoint (identical duplicates — e.g. from metrics
    created but untouched in several partitions — are tolerated)."""
    merged: dict[str, Any] = {}
    canon: dict[str, str] = {}
    for exports in per_partition:
        for path, export in exports.items():
            blob = json.dumps(export, sort_keys=True, default=_fallback)
            if path in merged:
                if canon[path] != blob:
                    raise PdesError(
                        f"metric {path!r} was written in more than one "
                        "partition; pdes specs must select "
                        "partition-disjoint metric paths")
                continue
            merged[path] = export
            canon[path] = blob
    return merged


def _fallback(obj: Any):
    if hasattr(obj, "item"):
        return obj.item()
    if hasattr(obj, "tolist"):
        return obj.tolist()
    raise TypeError(f"{type(obj).__name__} is not JSON serializable")


# -- coordinator --------------------------------------------------------


def run_partitioned(spec, partitions: Optional[int] = None) -> dict:
    """Execute one spec split across partition worker processes and
    return a result envelope byte-identical to ``run_spec(spec)``.

    ``partitions`` defaults to ``spec.params["partitions"]``; a value of
    1 (or a missing param) just runs serially in-process.
    """
    from repro.exp.spec import run_spec

    n = int(partitions if partitions is not None
            else spec.params.get("partitions", 1) or 1)
    if n <= 1:
        return run_spec(spec)
    merger = get_merger(spec.scenario)

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    up = ctx.Queue()
    downs = [ctx.Queue() for _ in range(n)]
    procs = [ctx.Process(target=_partition_worker,
                         args=(spec.canonical(), pid, n, downs[pid], up),
                         name=f"pdes-{spec.scenario}-p{pid}", daemon=True)
             for pid in range(n)]
    wall = perf_counter()
    for proc in procs:
        proc.start()

    blobs: dict[int, dict] = {}
    windows: dict[int, dict[int, list]] = {}
    hellos: dict[int, float] = {}
    failure: Optional[str] = None
    try:
        while len(blobs) < n and failure is None:
            try:
                msg = up.get(timeout=1.0)
            except Exception:  # queue.Empty: check for dead workers
                dead = [p.name for p in procs if p.exitcode not in (0, None)]
                if dead:
                    failure = f"partition worker(s) died: {dead}"
                continue
            kind = msg[0]
            if kind == "hello":
                hellos[msg[1]] = float(msg[2])
                if len(hellos) == n:
                    lookahead = min(hellos.values())
                    for down in downs:
                        down.put(("lookahead", lookahead))
            elif kind == "window":
                _, window, pid, records = msg
                pending = windows.setdefault(window, {})
                pending[pid] = records
                if len(pending) == n:
                    batches: list[list] = [[] for _ in range(n)]
                    for src_pid in range(n):
                        for rec in pending[src_pid]:
                            batches[rec[0]].append((src_pid,) + rec[1:])
                    for pid2, down in enumerate(downs):
                        down.put(("batch", window, batches[pid2]))
                    del windows[window]
            elif kind == "done":
                blobs[msg[1]] = msg[2]
            elif kind == "error":
                failure = f"partition {msg[1]}: {msg[2]}"
            else:  # pragma: no cover - protocol bug
                failure = f"unknown message {kind!r}"
    finally:
        if failure is not None:
            for down in downs:
                down.put(("abort", failure))
        for proc in procs:
            proc.join(timeout=10.0)
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join()
    if failure is not None:
        raise PdesError(failure)
    wall = perf_counter() - wall

    shards: dict[int, Any] = {}
    for pid in range(n):
        for group, shard in blobs[pid]["shards"].items():
            if group in shards:
                raise PdesError(f"group {group} returned by two partitions")
            shards[group] = shard
    paths: set[str] = set()
    for pid in range(n):
        paths.update(blobs[pid]["metric_paths"])
    ordered = [blobs[pid] for pid in range(n)]
    envelope: dict[str, Any] = {
        "spec": spec.canonical(),
        "payload": merger(shards),
        "metrics": _merge_metrics([b["metrics"] for b in ordered]),
        "traces": merge_trace_records([b["traces"] for b in ordered]),
        "obs": {
            "sim_now": max(b["sim_now"] for b in ordered),
            "events_dispatched": sum(b["events_dispatched"] for b in ordered),
            "n_metrics": len(paths),
            "n_trace_records": sum(b["n_trace_records"] for b in ordered),
        },
        "wall_seconds": wall,
    }
    # Same JSON round-trip run_spec applies, so the two are comparable
    # byte-for-byte via envelope_bytes().
    return json.loads(json.dumps(envelope, default=_fallback))


def execute_spec(spec) -> dict:
    """Run a spec the way it asks to be run: partitioned when it carries
    ``partitions > 1`` and its scenario registered a merger, serial
    otherwise. The sweep runner routes every point through this."""
    from repro.exp.spec import run_spec

    n = int(spec.params.get("partitions", 1) or 1)
    if n > 1 and has_merger(spec.scenario):
        return run_partitioned(spec)
    return run_spec(spec)
