"""Named, seeded random-number streams.

Every stochastic component (link loss, NAT port allocation, dirty-page
model, workload think times, ...) draws from its own named stream so that
adding a new random consumer never perturbs the draws of existing ones —
the property that makes regression tests on simulated metrics stable.

Stream seeds are derived from the registry seed and the stream name via
``numpy.random.SeedSequence`` spawn-key hashing, so streams are mutually
independent by construction.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory and cache of named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        gen = self._streams.get(name)
        if gen is None:
            # Stable 32-bit digest of the name keeps derivation independent
            # of dict insertion order and of Python's randomized str hash.
            digest = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(digest,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> list[str]:
        return sorted(self._streams)
