"""Deterministic discrete-event simulation kernel.

A small, self-contained SimPy-style engine: a binary-heap event calendar,
generator-based processes, timeouts, interruptible waits, and FIFO stores.
Every other subsystem in this repository (network links, NAT boxes, TCP,
the CAN overlay, VM migration, workload generators) is expressed as
processes scheduled by :class:`Simulator`.

The engine is strictly deterministic: events that fire at the same
simulated time are delivered in schedule order (a monotonically increasing
sequence number breaks ties), so a fixed seed reproduces a run exactly.
"""

from repro.obs.metrics import Counter, IntervalRate, TimeSeries
from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    Timer,
)
from repro.sim.lifecycle import Component, ComponentRegistry, LifecycleState
from repro.sim.queues import Channel, QueueFull, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Component",
    "ComponentRegistry",
    "Counter",
    "Event",
    "Interrupt",
    "IntervalRate",
    "LifecycleState",
    "Process",
    "QueueFull",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeSeries",
    "Timeout",
    "Timer",
]
