"""Unified component lifecycle: start/stop/crash/restore for every layer.

Anything with a failure mode — WAVNet drivers, rendezvous servers, NAT
gateways, links — subclasses :class:`Component` and registers itself
with the simulator's :class:`ComponentRegistry` (``sim.components``).
The base class owns the state machine and the observability (one trace
event and one ``faults.lifecycle.*`` counter per transition); subclasses
implement only the ``_on_stop`` / ``_on_crash`` / ``_on_restore`` hooks.

Semantics:

* **stop** — graceful shutdown: the component gets to say goodbye
  (a CAN node hands its zone over, a driver closes its tunnels).
* **crash** — ungraceful death: all volatile state is lost exactly as a
  power cycle would lose it (NAT mapping tables flush, a rendezvous
  server's host registry vanishes). Peers find out the hard way.
* **restore** — the component comes back empty-handed and must rebuild
  its state through the same protocols a cold boot would use
  (re-register, re-join, re-punch).

The :mod:`repro.faults` plane drives these transitions on a
deterministic schedule; tests and scenarios may also call them directly.
"""

from __future__ import annotations

import enum
from typing import Iterator, Optional

__all__ = ["Component", "ComponentRegistry", "LifecycleState"]


class LifecycleState(enum.Enum):
    RUNNING = "running"
    STOPPED = "stopped"
    CRASHED = "crashed"


class Component:
    """Base class for anything with a start/stop/crash/restore lifecycle."""

    def __init__(self, sim, kind: str, name: str) -> None:
        self.sim = sim
        self.component_kind = kind
        self.lifecycle = LifecycleState.RUNNING
        self.component_id = sim.components.add(self, kind, name)

    # -- inspection -----------------------------------------------------
    @property
    def running(self) -> bool:
        return self.lifecycle is LifecycleState.RUNNING

    # -- transitions ----------------------------------------------------
    def stop(self) -> None:
        """Graceful shutdown. Idempotent: stopping a non-running
        component is a no-op."""
        if self.lifecycle is not LifecycleState.RUNNING:
            return
        self.lifecycle = LifecycleState.STOPPED
        self._trace("stop")
        self._on_stop()

    def crash(self) -> None:
        """Ungraceful death: volatile state is lost, nobody is told."""
        if self.lifecycle is LifecycleState.CRASHED:
            return
        self.lifecycle = LifecycleState.CRASHED
        self._trace("crash")
        self._on_crash()

    def restore(self) -> None:
        """Bring a stopped/crashed component back. The component rebuilds
        its state through its normal protocols (hooks may spawn
        processes; ``restore`` itself returns immediately)."""
        if self.lifecycle is LifecycleState.RUNNING:
            return
        was = self.lifecycle
        self.lifecycle = LifecycleState.RUNNING
        self._trace("restore", was=was.value)
        self._on_restore()

    def _trace(self, transition: str, **attrs) -> None:
        self.sim.trace.event(f"lifecycle.{transition}", component=self.component_id, **attrs)
        self.sim.metrics.counter(f"faults.lifecycle.{transition}").add()

    # -- subclass hooks -------------------------------------------------
    def _on_stop(self) -> None:  # pragma: no cover - default no-op
        pass

    def _on_crash(self) -> None:
        # Default ungraceful death == graceful teardown; subclasses with
        # volatile state or goodbye protocols override.
        self._on_stop()

    def _on_restore(self) -> None:  # pragma: no cover - default no-op
        pass


class ComponentRegistry:
    """All lifecycle components of one simulation, addressable by id.

    Ids are ``<kind>:<name>`` (``driver:h0``, ``link:h0.access``,
    ``nat:siteA.nat``). Names need not be globally unique at creation —
    a duplicate gets a ``#2`` suffix — so ad-hoc test topologies with
    default names register cleanly.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self._components: dict[str, Component] = {}

    def add(self, component: Component, kind: str, name: str) -> str:
        base = f"{kind}:{name}"
        cid = base
        n = 2
        while cid in self._components:
            cid = f"{base}#{n}"
            n += 1
        self._components[cid] = component
        return cid

    def get(self, component_id: str) -> Optional[Component]:
        return self._components.get(component_id)

    def remove(self, component_id: str) -> Optional[Component]:
        """Forget a component entirely (host demotion tears the object
        stack down; a later re-materialization registers fresh). Returns
        the removed component, or None if the id is unknown."""
        return self._components.pop(component_id, None)

    def __getitem__(self, component_id: str) -> Component:
        return self._components[component_id]

    def __contains__(self, component_id: str) -> bool:
        return component_id in self._components

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[str]:
        return iter(self._components)

    def find(self, kind: Optional[str] = None,
             state: Optional[LifecycleState] = None) -> dict[str, Component]:
        """Components filtered by kind and/or lifecycle state."""
        return {cid: c for cid, c in self._components.items()
                if (kind is None or c.component_kind == kind)
                and (state is None or c.lifecycle is state)}

    # -- convenience drivers for the fault plane ------------------------
    def stop(self, component_id: str) -> None:
        self[component_id].stop()

    def crash(self, component_id: str) -> None:
        self[component_id].crash()

    def restore(self, component_id: str) -> None:
        self[component_id].restore()
