"""FIFO stores and rendezvous channels for inter-process communication.

:class:`Store` is the workhorse: an optionally capacity-bounded FIFO whose
``get()``/``put()`` return events a process can ``yield`` on. Network
sockets, NIC transmit queues, and application inboxes are all Stores.

:class:`Channel` adds a non-blocking drop-on-full put — the semantics of a
drop-tail router queue.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Channel", "QueueFull", "Store"]


class QueueFull(Exception):
    """Raised by :meth:`Store.put_nowait` when a bounded store is full."""


class Store:
    """FIFO of items with blocking get/put via events.

    ``capacity=None`` means unbounded. Waiters are served strictly FIFO.
    """

    def __init__(self, sim: Simulator, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    # -- blocking interface --------------------------------------------
    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` is enqueued (immediately unless full)."""
        ev = Event(self.sim)
        if not self.is_full:
            self._deliver(item)
            ev.succeed(item)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Event that fires with the next item."""
        ev = Event(self.sim)
        if self.items:
            ev.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    # -- non-blocking interface ------------------------------------------
    def put_nowait(self, item: Any) -> None:
        """Enqueue or raise :class:`QueueFull`."""
        if self.is_full:
            raise QueueFull()
        self._deliver(item)

    def try_put(self, item: Any) -> bool:
        """Enqueue and return True, or return False when full (drop-tail)."""
        if self.is_full:
            return False
        self._deliver(item)
        return True

    def get_nowait(self) -> Any:
        """Dequeue or raise :class:`SimulationError` when empty."""
        if not self.items:
            raise SimulationError("get_nowait on empty store")
        item = self.items.popleft()
        self._admit_putter()
        return item

    # -- internals -------------------------------------------------------
    def _deliver(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self.items.append(item)

    def _admit_putter(self) -> None:
        if self._putters and not self.is_full:
            ev, item = self._putters.popleft()
            self._deliver(item)
            ev.succeed(item)


class Channel(Store):
    """Bounded FIFO with drop-tail put — a router queue.

    :meth:`offer` is the datapath entry point; it never blocks and reports
    drops via its return value so callers can count them.
    """

    def __init__(self, sim: Simulator, capacity: int) -> None:
        super().__init__(sim, capacity=capacity)
        self.drops = 0

    def offer(self, item: Any) -> bool:
        # Hot path for every queued frame: inline the bound/deliver logic
        # (capacity is always an int for a Channel) instead of paying the
        # is_full property plus two method calls of ``try_put``.
        if len(self.items) < self.capacity:
            if self._getters:
                self._getters.popleft().succeed(item)
            else:
                self.items.append(item)
            return True
        self.drops += 1
        return False
