"""STUN server pair: one logical server on two public addresses.

RFC 3489 classification needs responses from four distinct endpoints
(two IPs x two ports). We model this as two coordinated public hosts —
the *primary* and the *alternate* — each binding the standard and the
alternate STUN ports. A CHANGE-REQUEST is honoured by relaying the reply
duty to the other host / other socket.
"""

from __future__ import annotations

from repro.net.addresses import IPv4Address, IPv4Network
from repro.net.l2 import Link
from repro.net.packet import Payload
from repro.net.stack import Host
from repro.net.wan import WanCloud
from repro.scenarios.builder import named_mac_factory
from repro.sim.engine import Simulator
from repro.stun.messages import STUN_ALT_PORT, STUN_PORT, StunRequest, StunResponse

__all__ = ["StunServerPair"]


class StunServerPair:
    """Two public hosts answering STUN binding requests."""

    def __init__(
        self,
        sim: Simulator,
        cloud: WanCloud,
        primary_ip: str = "9.9.9.1",
        alternate_ip: str = "9.9.9.2",
        public_network: str = "9.9.9.0/24",
        attach_latency: float = 0.001,
        name: str = "stun",
    ) -> None:
        self.sim = sim
        self.primary_ip = IPv4Address(primary_ip)
        self.alternate_ip = IPv4Address(alternate_ip)
        net = IPv4Network(public_network)
        self.hosts: dict[IPv4Address, Host] = {}
        self.requests_served = 0
        for tag, ip in (("primary", self.primary_ip), ("alt", self.alternate_ip)):
            host = Host(sim, f"{name}.{tag}", named_mac_factory(f"{name}.{tag}"))
            iface = host.add_nic().configure(ip, net)
            host.stack.connected_route_for(iface)
            host.stack.add_route("0.0.0.0/0", iface)
            Link(sim, iface.port, cloud.attach(f"{name}.{tag}"),
                 latency=attach_latency, bandwidth_bps=1e9, name=f"{name}.{tag}.access")
            self.hosts[ip] = host
            for port in (STUN_PORT, STUN_ALT_PORT):
                sock = host.udp.bind(port)
                sim.process(self._serve(host, ip, port, sock),
                            name=f"stun:{tag}:{port}")

    def _other_ip(self, ip: IPv4Address) -> IPv4Address:
        return self.alternate_ip if ip == self.primary_ip else self.primary_ip

    def _other_port(self, port: int) -> int:
        return STUN_ALT_PORT if port == STUN_PORT else STUN_PORT

    def _serve(self, host: Host, ip: IPv4Address, port: int, sock):
        while True:
            payload, src_ip, src_port = yield sock.recvfrom()
            request = payload.data
            if not isinstance(request, StunRequest):
                continue
            self.requests_served += 1
            reply_ip = self._other_ip(ip) if request.change_ip else ip
            reply_port = self._other_port(port) if request.change_port else port
            response = StunResponse(
                txid=request.txid,
                mapped_ip=src_ip,
                mapped_port=src_port,
                source_ip=reply_ip,
                source_port=reply_port,
                changed_ip=self._other_ip(ip),
                changed_port=self._other_port(port),
            )
            reply_host = self.hosts[reply_ip]
            reply_sock = reply_host.udp.sockets[reply_port]
            reply_sock.sendto(src_ip, src_port, Payload(response.size, data=response, kind="stun"))
