"""STUN (RFC 3489) — NAT discovery for the WAVNet connection layer.

The paper (§II.B) uses STUN to (a) learn a host's public ``{NAT IP, NAT
port}`` 2-tuple and (b) classify the NAT so the driver knows whether UDP
hole punching will work. The classic algorithm needs a server with two
public addresses, modeled here as a pair of co-ordinated hosts.
"""

from repro.stun.client import StunClient, StunProbeResult
from repro.stun.messages import StunRequest, StunResponse
from repro.stun.server import StunServerPair

__all__ = ["StunClient", "StunProbeResult", "StunRequest", "StunResponse", "StunServerPair"]
