"""STUN wire messages (binding request/response with change flags)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import IPv4Address

__all__ = ["STUN_PORT", "STUN_ALT_PORT", "StunRequest", "StunResponse"]

STUN_PORT = 3478
STUN_ALT_PORT = 3479

# Typical binding request/response sizes on the wire (header + attrs).
REQUEST_SIZE = 28
RESPONSE_SIZE = 68


@dataclass(frozen=True)
class StunRequest:
    """Binding request. ``change_ip``/``change_port`` ask the server to
    answer from its alternate address and/or port (RFC 3489 CHANGE-REQUEST)."""

    txid: int
    change_ip: bool = False
    change_port: bool = False

    @property
    def size(self) -> int:
        return REQUEST_SIZE


@dataclass(frozen=True)
class StunResponse:
    """Binding response: MAPPED-ADDRESS plus the server's own addresses
    (SOURCE-ADDRESS / CHANGED-ADDRESS)."""

    txid: int
    mapped_ip: IPv4Address
    mapped_port: int
    source_ip: IPv4Address
    source_port: int
    changed_ip: IPv4Address
    changed_port: int

    @property
    def size(self) -> int:
        return RESPONSE_SIZE
