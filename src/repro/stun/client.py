"""STUN client: public-endpoint discovery and NAT classification.

Implements the RFC 3489 decision tree the paper relies on:

* **Test I** — plain binding request; learns the mapped (public) endpoint.
* **Test II** — request with change-IP+change-port; a reply means nothing
  filters inbound from unknown endpoints (OPEN or Full Cone).
* **Test I'** — plain request to the *alternate* server address; a
  different mapped port means per-destination mapping (Symmetric).
* **Test III** — request with change-port only; distinguishes Restricted
  Cone (reply arrives) from Port Restricted Cone (it does not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.nat.types import NatType
from repro.net.addresses import IPv4Address
from repro.net.packet import Payload
from repro.net.udp import UdpSocket
from repro.stun.messages import STUN_PORT, StunRequest, StunResponse

__all__ = ["StunClient", "StunProbeResult"]


@dataclass
class StunProbeResult:
    """Outcome of a full classification run.

    ``alloc_stride`` is the inferred symmetric port-allocation stride:
    three consecutive allocations with equal deltas (Ford et al.'s
    predictability test) yield the delta; 0 means unpredictable or not
    symmetric, and peers will not attempt port prediction.
    """

    nat_type: NatType
    mapped_ip: Optional[IPv4Address]
    mapped_port: Optional[int]
    blocked: bool = False
    alloc_stride: int = 0

    @property
    def public_endpoint(self) -> tuple[IPv4Address, int]:
        if self.mapped_ip is None:
            raise RuntimeError("no mapped endpoint (UDP blocked?)")
        return (self.mapped_ip, self.mapped_port)


class StunClient:
    """Runs STUN tests from one host through one UDP socket.

    The socket used for probing is the same one later used for hole
    punching, so the discovered mapping is the one that matters.
    """

    def __init__(self, stack, sock: UdpSocket, server_ip: IPv4Address | str,
                 server_port: int = STUN_PORT, timeout: float = 0.8, retries: int = 2,
                 inbox=None) -> None:
        """``inbox`` (a Store of ``(payload, ip, port)``) lets an owner
        that already demultiplexes the socket (the WAVNet driver) feed
        STUN responses in, instead of this client reading the socket —
        two readers on one socket steal each other's datagrams."""
        self.stack = stack
        self.sock = sock
        self.server_ip = IPv4Address(server_ip)
        self.server_port = server_port
        self.timeout = timeout
        self.retries = retries
        self.inbox = inbox
        self._txid = int(id(self)) & 0xFFFF
        self._pending_get = None

    def _recv(self):
        if self.inbox is not None:
            return self.inbox.get()
        return self.sock.recvfrom()

    def _next_txid(self) -> int:
        self._txid += 1
        return self._txid

    def _request(self, dst_ip: IPv4Address, dst_port: int,
                 change_ip: bool = False, change_port: bool = False):
        """Process: one test (with retries); returns StunResponse or None."""
        sim = self.stack.sim
        for _attempt in range(self.retries):
            txid = self._next_txid()
            req = StunRequest(txid, change_ip=change_ip, change_port=change_port)
            self.sock.sendto(dst_ip, dst_port, Payload(req.size, data=req, kind="stun"))
            deadline = sim.timeout(self.timeout)
            while True:
                if self._pending_get is None:
                    self._pending_get = self._recv()
                yield sim.any_of([self._pending_get, deadline])
                if not self._pending_get.processed:
                    break  # timed out; keep the getter armed for the retry
                payload, _ip, _port = self._pending_get.value
                self._pending_get = None
                msg = payload.data
                if isinstance(msg, StunResponse) and msg.txid == txid:
                    return msg
        return None

    def discover_endpoint(self):
        """Process: Test I only; returns (mapped_ip, mapped_port) or None."""
        response = yield from self._request(self.server_ip, self.server_port)
        if response is None:
            return None
        return (response.mapped_ip, response.mapped_port)

    def classify(self):
        """Process: full RFC 3489 classification; returns StunProbeResult."""
        test1 = yield from self._request(self.server_ip, self.server_port)
        if test1 is None:
            return StunProbeResult(NatType.SYMMETRIC, None, None, blocked=True)
        mapped = (test1.mapped_ip, test1.mapped_port)
        local_ips = self.stack.ips

        test2 = yield from self._request(self.server_ip, self.server_port,
                                         change_ip=True, change_port=True)
        if test1.mapped_ip in local_ips:
            # Not NATed at all; Test II separates OPEN from a symmetric
            # UDP firewall (we fold the latter into OPEN for the paper's
            # purposes: both accept hole-punched traffic after outbound).
            return StunProbeResult(NatType.OPEN, *mapped)
        if test2 is not None:
            return StunProbeResult(NatType.FULL_CONE, *mapped)

        # Test I against the alternate address: does the mapping move?
        test1b = yield from self._request(test1.changed_ip, test1.changed_port)
        if test1b is None:
            # Alternate server unreachable: fall back conservatively.
            return StunProbeResult(NatType.SYMMETRIC, *mapped)
        alt_mapped = (test1b.mapped_ip, test1b.mapped_port)
        if alt_mapped != mapped:
            stride = yield from self._infer_stride(mapped, alt_mapped, test1)
            return StunProbeResult(NatType.SYMMETRIC, *mapped, alloc_stride=stride)

        test3 = yield from self._request(self.server_ip, self.server_port,
                                         change_port=True)
        if test3 is not None:
            return StunProbeResult(NatType.RESTRICTED_CONE, *mapped)
        return StunProbeResult(NatType.PORT_RESTRICTED, *mapped)

    def _infer_stride(self, mapped, alt_mapped, test1: StunResponse):
        """Process: allocation-inference probe for symmetric NATs.

        Tests I and I' already produced two consecutive allocations (the
        mapping toward the primary and alternate server addresses). One
        more binding request to a third server endpoint — the primary IP
        on the alternate port — yields a third. Equal deltas across the
        three mean a sequential/stride allocator; anything else (random
        allocation, a multi-homed NAT that moved IPs) is unpredictable.
        """
        if alt_mapped[0] != mapped[0]:
            return 0
        test1c = yield from self._request(self.server_ip, test1.changed_port)
        if test1c is None:
            return 0
        d1 = alt_mapped[1] - mapped[1]
        d2 = test1c.mapped_port - alt_mapped[1]
        if d1 == d2 and 0 < d1 <= 256:
            return d1
        return 0
