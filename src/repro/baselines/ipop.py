"""IPOP-style IP-over-P2P overlay — the paper's comparator (§IV).

We implement the *structural* properties the paper attributes IPOP's
losses to, not a bug-for-bug copy:

1. **Data path through a P2P routing layer.** Every packet is processed
   by a user-level routing stack (C#/Brunet era) with a serialized
   per-packet CPU cost at the endpoints and at every relay. This caps
   packet rate and is what makes IPOP "less than 20% of the native
   performance" on uncongested links (Fig 7).
2. **Structured ring overlay with bounded direct connections.** Nodes
   keep successor/predecessor + a few shortcuts; direct (shortcut)
   connections to arbitrary peers are created on demand but capped at
   ``max_direct`` — beyond that, traffic relays through intermediate
   hosts, degrading with cluster size (Fig 8).
3. **Layer-3 tunneling with a DHT-backed IP->node directory that goes
   stale on VM migration.** The overlay keeps routing to the source host
   after the VM moves (Fig 9's stall); re-registration requires an IPOP
   restart, which we deliberately do not perform (matching the paper's
   observation).
4. **Per-packet P2P header** (~70 B Brunet framing) on top of UDP/IP.

Nodes communicate over the same simulated physical network as WAVNet,
including NAT traversal (scripted simultaneous hellos for bootstrap
edges, overlay-relayed hello exchange for on-demand links).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.addresses import IPv4Address, IPv4Network, MacAddress
from repro.net.l2 import Bridge, Port, patch
from repro.net.packet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ArpPacket,
    EthernetFrame,
    IPv4Packet,
    Payload,
    frame_for,
)
from repro.net.stack import Host, Interface
from repro.sim.queues import Store

__all__ = ["IpopConfig", "IpopDirectory", "IpopNode", "IpopOverlay"]

IPOP_PORT = 15151


@dataclass(frozen=True)
class IpopConfig:
    """Calibration knobs for the IPOP model."""

    # Calibration. A TCP round trip costs four stack services (data out
    # at the source, data in + ACK out at the sink, ACK in at the
    # source), so sustained throughput caps at MSS*8 / (4*(endpoint_cost
    # + cpu_jitter_mean)) ~ 11-13 Mbps — Fig 7's "<20% of native" on
    # fast links, near-native on slow ones. The same constants put the
    # ping overhead at ~0.9 ms RTT, matching Table II's worst case.
    endpoint_cost: float = 125e-6   # user-level per-packet cost at src/dst
    relay_cost: float = 150e-6      # per-packet cost at each relay hop
    # Service-time jitter (scheduler + GC of the managed runtime);
    # overload surfaces as queueing delay, not loss.
    cpu_jitter_mean: float = 100e-6
    header_bytes: int = 70          # Brunet P2P framing per packet
    max_direct: int = 6             # on-demand direct connections per node
    n_shortcuts: int = 2            # static ring shortcuts
    port: int = IPOP_PORT
    punch_setup_rtts: float = 2.0   # RTTs to create an on-demand link
    # The user-level stack buffers deeply (managed-runtime queues):
    # overload shows up as queueing *delay*, which window-limits TCP at
    # the service rate — not as random loss, which would collapse WAN
    # TCP entirely (and contradict the paper's Table II latencies).
    cpu_queue_capacity: int = 2048  # packets queued at the user-level stack
    # Brunet framing limits P2P packets to ~1280 B; a full-size 1500 B
    # host packet is fragmented into two P2P packets, each paying the
    # per-packet stack cost and header. Pings and ACKs fit in one.
    p2p_mtu: int = 1280


@dataclass(frozen=True)
class _IpopPacket:
    """P2P-framed IP packet in flight between overlay nodes."""

    target_node: str
    packet: IPv4Packet
    header_bytes: int
    hops: int = 0
    fragments: int = 1

    @property
    def size(self) -> int:
        return self.fragments * self.header_bytes + self.packet.size


@dataclass(frozen=True)
class _Hello:
    sender: str

    @property
    def size(self) -> int:
        return 24


class IpopDirectory:
    """The DHT-backed IP -> node mapping.

    Entries are written at attach time and — deliberately — never
    invalidated on migration (paper §IV point 3)."""

    def __init__(self) -> None:
        self.entries: dict[IPv4Address, str] = {}

    def register(self, ip: IPv4Address, node_name: str) -> None:
        self.entries[ip] = node_name

    def lookup(self, ip: IPv4Address) -> Optional[str]:
        return self.entries.get(ip)


def ring_position(name: str) -> float:
    return (zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF) / 2**32


def ring_distance(a: float, b: float) -> float:
    d = abs(a - b)
    return min(d, 1.0 - d)


class IpopNode:
    """One IPOP endpoint on a physical host."""

    def __init__(self, overlay: "IpopOverlay", host: Host,
                 virtual_ip: IPv4Address | str) -> None:
        self.overlay = overlay
        self.config = overlay.config
        self.sim = host.sim
        self.host = host
        self.name = host.name
        self.ring_id = ring_position(self.name)
        self.virtual_ip = IPv4Address(virtual_ip)
        self.sock = host.udp.bind(self.config.port)
        self.public_endpoint: tuple[IPv4Address, int] = (host.stack.ips[0], self.config.port)

        # Overlay links: peer name -> reachable endpoint.
        self.neighbors: dict[str, tuple[IPv4Address, int]] = {}   # ring edges
        self.direct: dict[str, tuple[IPv4Address, int]] = {}      # on-demand
        self.pending_ring: set[str] = set()  # bootstrap edges being punched
        self._punching: set[str] = set()

        # Local delivery: IP -> callable(IPv4Packet).
        self.local_ips: dict[IPv4Address, Callable[[IPv4Packet], None]] = {}

        # Serialized user-level packet processing (the C# stack).
        self._cpu: Store = Store(self.sim, capacity=self.config.cpu_queue_capacity)
        self._cpu_rng = self.sim.rng.stream(f"ipop.cpu.{self.name}")
        self.cpu_drops = 0
        self.packets_relayed = 0
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0

        # L3 tun into the host stack.
        self.tun = self._make_tun()
        self.local_ips[self.virtual_ip] = self._deliver_to_stack

        # Local bridge for attached VMs (interface-mode stand-in).
        self.bridge = Bridge(self.sim, name=f"{self.name}.ipopbr")
        self._bridge_port = Port(self, name=f"{self.name}.ipop.brport")
        patch(self._bridge_port, self.bridge.new_port("ipop"))
        self._bridge_mac = host.mac_mint()
        self._vm_macs: dict[IPv4Address, MacAddress] = {}

        self.sim.process(self._rx_loop(), name=f"ipop-rx:{self.name}")
        self.sim.process(self._cpu_loop(), name=f"ipop-cpu:{self.name}")

    # ------------------------------------------------------------------
    # tun plumbing
    # ------------------------------------------------------------------
    def _make_tun(self) -> Interface:
        stack = self.host.stack
        tun = stack.add_interface("ipop0", self.host.mac_mint())
        tun.configure(self.virtual_ip, self.overlay.virtual_network)
        # Route the whole virtual subnet into the tun via a phantom
        # gateway with a static ARP entry (tun devices have no L2).
        gw = self.overlay.phantom_gateway
        stack.add_route(self.overlay.virtual_network, tun, gateway=gw)
        stack.arp_cache[gw] = (MacAddress(0x02_FF_FF_00_00_01), float("inf"))
        tun.port.connect(self._on_tun_frame)
        return tun

    def _on_tun_frame(self, frame: EthernetFrame) -> None:
        if frame.ethertype != ETHERTYPE_IPV4:
            return
        self._enqueue_cpu(("out", frame.payload))

    def _deliver_to_stack(self, packet: IPv4Packet) -> None:
        self.host.stack.deliver_local(packet)

    # ------------------------------------------------------------------
    # VM attachment (interface-mode stand-in)
    # ------------------------------------------------------------------
    def attach_vm_port(self, port: Port, vm_ip: IPv4Address, vm_mac: MacAddress,
                       label: str = "vif") -> None:
        """Plug a VM vif into the local IPOP bridge and register its IP
        in the (never-invalidated) directory."""
        patch(port, self.bridge.new_port(label))
        self._vm_macs[vm_ip] = vm_mac
        self.local_ips[vm_ip] = self._deliver_to_vm_factory(vm_ip)
        self.overlay.directory.register(vm_ip, self.name)

    def detach_vm_ip(self, vm_ip: IPv4Address) -> None:
        """Local state forgets the VM (it migrated away); the directory
        entry is NOT removed — that is IPOP's migration blindness."""
        self.local_ips.pop(vm_ip, None)
        self._vm_macs.pop(vm_ip, None)

    def _deliver_to_vm_factory(self, vm_ip: IPv4Address):
        def deliver(packet: IPv4Packet) -> None:
            mac = self._vm_macs.get(vm_ip)
            if mac is None:
                self.packets_dropped += 1
                return
            self._bridge_port.transmit(frame_for(packet, self._bridge_mac, mac))
        return deliver

    # Bridge port owner protocol: VM-originated traffic + proxy ARP.
    def on_frame(self, frame: EthernetFrame, port: Port) -> None:
        if frame.ethertype == ETHERTYPE_ARP:
            arp: ArpPacket = frame.payload
            if arp.op == "request" and arp.target_ip not in self._vm_macs:
                reply = ArpPacket("reply", self._bridge_mac, arp.target_ip,
                                  arp.sender_mac, arp.sender_ip)
                self._bridge_port.transmit(frame_for(reply, self._bridge_mac, arp.sender_mac))
            return
        if frame.ethertype != ETHERTYPE_IPV4:
            return
        packet: IPv4Packet = frame.payload
        handler = self.local_ips.get(packet.dst)
        if handler is not None and packet.dst not in self._vm_macs:
            handler(packet)
            return
        if packet.dst in self._vm_macs:
            deliver = self.local_ips.get(packet.dst)
            if deliver is not None:
                deliver(packet)
            return
        self._enqueue_cpu(("out", packet))

    # ------------------------------------------------------------------
    # user-level packet processing
    # ------------------------------------------------------------------
    def _enqueue_cpu(self, work) -> None:
        if not self._cpu.try_put(work):
            self.cpu_drops += 1

    def _cpu_loop(self):
        sim = self.sim
        jitter = self.config.cpu_jitter_mean
        while True:
            kind, item = yield self._cpu.get()
            extra = float(self._cpu_rng.exponential(jitter)) if jitter > 0 else 0.0
            if kind == "out":
                frags = self._fragments_of(item)
                yield sim.timeout(frags * self.config.endpoint_cost + extra)
                self._route_out(item)
            elif kind == "relay":
                yield sim.timeout(item.fragments * self.config.relay_cost + extra)
                self._forward(item)
            elif kind == "in":
                yield sim.timeout(item.fragments * self.config.endpoint_cost + extra)
                self._deliver(item)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _fragments_of(self, packet: IPv4Packet) -> int:
        return max(1, -(-packet.size // self.config.p2p_mtu))

    def _route_out(self, packet: IPv4Packet) -> None:
        target = self.overlay.directory.lookup(packet.dst)
        if target is None:
            self.packets_dropped += 1
            return
        if target == self.name:
            self._deliver(_IpopPacket(target, packet, 0))
            return
        self.packets_sent += 1
        self._forward(_IpopPacket(target, packet, self.config.header_bytes,
                                  fragments=self._fragments_of(packet)))

    def _forward(self, p2p: _IpopPacket) -> None:
        if p2p.hops > 32:
            self.packets_dropped += 1
            return
        endpoint = self.direct.get(p2p.target_node) or self.neighbors.get(p2p.target_node)
        if endpoint is None:
            self._maybe_open_direct(p2p.target_node)
            endpoint = self._greedy_next_hop(p2p.target_node)
        if endpoint is None:
            self.packets_dropped += 1
            return
        self.sock.sendto(endpoint[0], endpoint[1],
                         Payload(p2p.size, data=_IpopPacket(
                             p2p.target_node, p2p.packet, p2p.header_bytes,
                             p2p.hops + 1, p2p.fragments), kind="ipop"))

    def _greedy_next_hop(self, target_node: str) -> Optional[tuple[IPv4Address, int]]:
        target_pos = self.overlay.ring_id_of(target_node)
        if target_pos is None:
            return None
        best_name, best_d = None, ring_distance(self.ring_id, target_pos)
        for name in list(self.neighbors) + list(self.direct):
            pos = self.overlay.ring_id_of(name)
            if pos is None:
                continue
            d = ring_distance(pos, target_pos)
            if d < best_d - 1e-15:
                best_d, best_name = d, name
        if best_name is None:
            return None
        return self.direct.get(best_name) or self.neighbors.get(best_name)

    def _deliver(self, p2p: _IpopPacket) -> None:
        handler = self.local_ips.get(p2p.packet.dst)
        if handler is None:
            self.packets_dropped += 1  # stale directory entry (migration!)
            return
        self.packets_delivered += 1
        handler(p2p.packet)

    # ------------------------------------------------------------------
    # on-demand direct links (bounded)
    # ------------------------------------------------------------------
    def _maybe_open_direct(self, target_node: str) -> None:
        if (target_node in self.direct or target_node in self._punching
                or len(self.direct) >= self.config.max_direct):
            return
        endpoint = self.overlay.endpoint_of(target_node)
        if endpoint is None:
            return
        self._punching.add(target_node)
        self.sim.process(self._punch(target_node, endpoint),
                         name=f"ipop-punch:{self.name}->{target_node}")

    def _punch(self, target_node: str, endpoint):
        # Direct hello opens our NAT toward the peer; the routed request
        # asks the peer to hello back, opening theirs.
        for _ in range(3):
            self.sock.sendto(endpoint[0], endpoint[1],
                             Payload(24, data=_Hello(self.name), kind="ipop"))
            relay = self._greedy_next_hop(target_node)
            if relay is not None:
                self.sock.sendto(relay[0], relay[1],
                                 Payload(24, data=_RoutedHello(target_node, self.name),
                                         kind="ipop"))
            yield self.sim.timeout(0.3)
            if target_node in self.direct:
                break
        self._punching.discard(target_node)

    # ------------------------------------------------------------------
    # inbound
    # ------------------------------------------------------------------
    def _rx_loop(self):
        while True:
            payload, src_ip, src_port = yield self.sock.recvfrom()
            body = payload.data
            if isinstance(body, _IpopPacket):
                if body.target_node == self.name:
                    self._enqueue_cpu(("in", body))
                else:
                    self.packets_relayed += 1
                    self._enqueue_cpu(("relay", body))
            elif isinstance(body, _Hello):
                if body.sender in self.pending_ring or body.sender in self.neighbors:
                    new = body.sender not in self.neighbors
                    self.neighbors[body.sender] = (src_ip, src_port)
                    if new:
                        self.sock.sendto(src_ip, src_port,
                                         Payload(24, data=_Hello(self.name), kind="ipop"))
                elif len(self.direct) < self.config.max_direct or body.sender in self.direct:
                    already = body.sender in self.direct
                    self.direct[body.sender] = (src_ip, src_port)
                    if not already:
                        self.sock.sendto(src_ip, src_port,
                                         Payload(24, data=_Hello(self.name), kind="ipop"))
            elif isinstance(body, _RoutedHello):
                if body.target_node == self.name:
                    peer_ep = self.overlay.endpoint_of(body.requester)
                    if peer_ep is not None:
                        self.sock.sendto(peer_ep[0], peer_ep[1],
                                         Payload(24, data=_Hello(self.name), kind="ipop"))
                else:
                    nxt = self._greedy_next_hop(body.target_node)
                    if nxt is not None:
                        self.sock.sendto(nxt[0], nxt[1], payload)


@dataclass(frozen=True)
class _RoutedHello:
    target_node: str
    requester: str

    @property
    def size(self) -> int:
        return 24


class IpopOverlay:
    """Coordinator: membership, ring construction, shared directory."""

    def __init__(self, sim, virtual_network: str = "10.128.0.0/16",
                 config: Optional[IpopConfig] = None) -> None:
        self.sim = sim
        self.config = config or IpopConfig()
        self.virtual_network = IPv4Network(virtual_network)
        self.phantom_gateway = self.virtual_network.broadcast + (-1)  # .254
        self.directory = IpopDirectory()
        self.nodes: dict[str, IpopNode] = {}

    def add_node(self, host: Host, virtual_ip: IPv4Address | str,
                 nat=None) -> IpopNode:
        """``nat`` is the host's NatBox (if any) so the overlay can learn
        the node's public endpoint at build time."""
        node = IpopNode(self, host, virtual_ip)
        node._nat = nat
        self.nodes[node.name] = node
        self.directory.register(node.virtual_ip, node.name)
        return node

    def ring_id_of(self, name: str) -> Optional[float]:
        node = self.nodes.get(name)
        return node.ring_id if node else None

    def endpoint_of(self, name: str) -> Optional[tuple[IPv4Address, int]]:
        node = self.nodes.get(name)
        if node is None:
            return None
        return node.public_endpoint

    def _discover_public_endpoints(self) -> None:
        """Each node learns its NATed public endpoint (IPOP uses its own
        STUN-ish discovery; we read it from the NAT model directly)."""
        for node in self.nodes.values():
            nat = getattr(node, "_nat", None)
            if nat is not None:
                ip, port = nat.external_endpoint_for(
                    node.host.stack.ips[0], node.config.port,
                    IPv4Address("9.1.0.1"), 1)
                node.public_endpoint = (ip, port)

    def build_ring(self):
        """Process: establish ring + shortcut edges (bootstrap punching:
        both endpoints hello simultaneously, as IPOP's bootstrap does)."""
        self._discover_public_endpoints()
        ordered = sorted(self.nodes.values(), key=lambda n: n.ring_id)
        n = len(ordered)
        edges: set[tuple[str, str]] = set()
        for i, node in enumerate(ordered):
            succ = ordered[(i + 1) % n]
            edges.add(tuple(sorted((node.name, succ.name))))
            rng = self.sim.rng.stream(f"ipop.shortcuts.{node.name}")
            for _ in range(self.config.n_shortcuts):
                other = ordered[int(rng.integers(n))]
                if other.name != node.name:
                    edges.add(tuple(sorted((node.name, other.name))))
        for a_name, b_name in sorted(edges):
            self.nodes[a_name].pending_ring.add(b_name)
            self.nodes[b_name].pending_ring.add(a_name)
        for a_name, b_name in sorted(edges):
            a, b = self.nodes[a_name], self.nodes[b_name]
            for _ in range(2):  # simultaneous hellos punch both NATs
                a.sock.sendto(b.public_endpoint[0], b.public_endpoint[1],
                              Payload(24, data=_Hello(a.name), kind="ipop"))
                b.sock.sendto(a.public_endpoint[0], a.public_endpoint[1],
                              Payload(24, data=_Hello(b.name), kind="ipop"))
                yield self.sim.timeout(0.2)
        yield self.sim.timeout(0.2)
        for node in self.nodes.values():
            node.pending_ring.clear()
