"""Baseline comparator systems.

:mod:`repro.baselines.ipop` reimplements the structural design of IPOP
(Ganguly et al., "IP over P2P", IPDPS'06 / WOW HPDC'06) — the system the
paper compares against in every experiment.
"""

from repro.baselines.ipop import IpopConfig, IpopNode, IpopOverlay

__all__ = ["IpopConfig", "IpopNode", "IpopOverlay"]
