"""Declarative experiment specs and the scenario registry.

An :class:`ExperimentSpec` is a picklable description of ONE simulation
run: a scenario name resolved against the registry, its parameters, the
seed, and which metrics / trace records to export. Because a spec is
pure data, it can cross process boundaries — the sharded sweep runner
(:mod:`repro.exp.runner`) pickles specs into worker processes and gets
result *envelopes* back.

Scenario functions are registered with the :func:`scenario` decorator::

    @scenario("churn_recovery")
    def churn_recovery(seed=0, n_hosts=4, horizon=220.0):
        sim = Simulator(seed=seed)
        ...
        return sim, {"converged": True, ...}

The contract: ``fn(seed=..., **params)`` returns either a JSON-ready
payload dict, or ``(sim, payload)`` — returning the simulator lets
:func:`run_spec` export the spec's selected metrics/traces and the
kernel's dispatch counters into the envelope.

Envelopes are deterministic: :func:`envelope_bytes` serializes one
canonically with the wall-clock field stripped, so a sweep executed
serially and a sweep sharded over N workers must produce byte-identical
results (asserted by ``benchmarks/bench_sweep_parallel.py`` and the
determinism goldens in ``tests/test_exp.py``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable

__all__ = [
    "ExperimentSpec",
    "ScenarioRegistry",
    "canonical_envelope",
    "envelope_bytes",
    "ensure_scenarios_loaded",
    "get_scenario",
    "registry",
    "run_spec",
    "scenario",
    "scenario_names",
]

# Modules whose import side effect registers the standard scenarios.
_SCENARIO_MODULES = (
    "repro.scenarios.wavnet_env",
    "repro.scenarios.churn",
    "repro.scenarios.emulated",
    "repro.scenarios.planetlab",
    "repro.scenarios.stacks",
    "repro.scenarios.fluid",
    "repro.scenarios.storm",
    "repro.scenarios.pdes_sites",
    "repro.scenarios.fairness",
    "repro.scenarios.traversal",
)


class ScenarioRegistry:
    """Name -> scenario function. Usually used via the module-level
    :data:`registry` and the :func:`scenario` decorator."""

    def __init__(self) -> None:
        self._scenarios: dict[str, Callable] = {}

    def register(self, name: str, fn: Callable) -> Callable:
        existing = self._scenarios.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"scenario {name!r} already registered")
        self._scenarios[name] = fn
        return fn

    def scenario(self, name: str) -> Callable[[Callable], Callable]:
        """Decorator form: ``@registry.scenario("churn_recovery")``."""

        def deco(fn: Callable) -> Callable:
            return self.register(name, fn)

        return deco

    def get(self, name: str) -> Callable:
        ensure_scenarios_loaded()
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> list[str]:
        ensure_scenarios_loaded()
        return sorted(self._scenarios)

    def __contains__(self, name: str) -> bool:
        ensure_scenarios_loaded()
        return name in self._scenarios


registry = ScenarioRegistry()
scenario = registry.scenario
get_scenario = registry.get
scenario_names = registry.names

_loaded = False


def ensure_scenarios_loaded() -> None:
    """Import the standard scenario modules so their registrations run.

    Called lazily on first lookup — worker processes resolve scenario
    names through this, so a spec never has to pickle a function.
    """
    global _loaded
    if _loaded:
        return
    _loaded = True  # set first: the imports below re-enter via @scenario
    import importlib

    for module in _SCENARIO_MODULES:
        importlib.import_module(module)


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative, picklable description of one simulation run.

    ``metrics`` / ``traces`` are dotted-path selections (globs or
    prefixes, see :func:`repro.obs.metrics.path_matches`) exported into
    the result envelope alongside the scenario's own payload.
    """

    scenario: str
    params: dict = field(default_factory=dict)
    seed: int = 0
    metrics: tuple = ()
    traces: tuple = ()

    def __post_init__(self) -> None:
        if "seed" in self.params:
            raise ValueError("pass seed via ExperimentSpec.seed, not params")
        # Normalize so equal selections compare/hash equal.
        object.__setattr__(self, "metrics", tuple(self.metrics))
        object.__setattr__(self, "traces", tuple(self.traces))

    # -- canonical forms ----------------------------------------------
    def canonical(self) -> dict:
        """JSON-ready dict; the identity the artifact cache keys on."""
        return {
            "scenario": self.scenario,
            "params": dict(self.params),
            "seed": self.seed,
            "metrics": list(self.metrics),
            "traces": list(self.traces),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        return cls(scenario=data["scenario"], params=dict(data.get("params", {})),
                   seed=int(data.get("seed", 0)),
                   metrics=tuple(data.get("metrics", ())),
                   traces=tuple(data.get("traces", ())))

    def digest(self, n: int = 10) -> str:
        """Stable short content hash of the canonical form."""
        blob = json.dumps(self.canonical(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:n]

    def resolve(self) -> Callable:
        """The registered scenario function this spec names."""
        return get_scenario(self.scenario)

    def run(self) -> dict:
        return run_spec(self)


def run_spec(spec: ExperimentSpec) -> dict:
    """Execute one spec in-process and return its result envelope.

    The envelope is a JSON-ready dict::

        {"spec": {...},             # the canonical spec
         "payload": {...},          # what the scenario returned
         "metrics": {path: {...}},  # selected metric exports
         "traces": [...],           # selected trace records
         "obs": {"sim_now", "events_dispatched", "n_metrics",
                 "n_trace_records"},
         "wall_seconds": 0.123}     # excluded from envelope_bytes()

    Everything except ``wall_seconds`` is deterministic for a given
    spec, regardless of which process (or how many siblings) ran it.
    """
    fn = spec.resolve()
    wall = perf_counter()
    result = fn(seed=spec.seed, **spec.params)
    wall = perf_counter() - wall

    sim = None
    payload = result
    if isinstance(result, tuple):
        sim, payload = result
    if not isinstance(payload, dict):
        raise TypeError(
            f"scenario {spec.scenario!r} must return a payload dict "
            f"(or (sim, payload)), got {type(payload).__name__}")

    envelope: dict[str, Any] = {
        "spec": spec.canonical(),
        "payload": payload,
        "metrics": {},
        "traces": [],
        "obs": {},
        "wall_seconds": wall,
    }
    if sim is not None:
        if spec.metrics:
            envelope["metrics"] = sim.metrics.export(spec.metrics)
        if spec.traces:
            envelope["traces"] = sim.trace.export(spec.traces)
        envelope["obs"] = {
            "sim_now": sim.now,
            "events_dispatched": sim.events_dispatched,
            "n_metrics": len(sim.metrics),
            "n_trace_records": len(sim.trace),
        }
    # Round-trip through JSON so a fresh envelope is indistinguishable
    # from one loaded back out of the artifact store (tuples -> lists,
    # numpy scalars -> floats, dict key coercion).
    return json.loads(json.dumps(envelope, default=_jsonify))


def _jsonify(obj: Any):
    """Fallback serializer: numpy scalars/arrays to plain Python."""
    if hasattr(obj, "item"):
        return obj.item()
    if hasattr(obj, "tolist"):
        return obj.tolist()
    raise TypeError(f"{type(obj).__name__} is not JSON serializable")


def canonical_envelope(envelope: dict) -> dict:
    """The deterministic part of an envelope (wall clock stripped)."""
    return {k: v for k, v in envelope.items() if k != "wall_seconds"}


def envelope_bytes(envelope: dict) -> bytes:
    """Canonical serialized form used for byte-identity assertions."""
    return json.dumps(canonical_envelope(envelope), sort_keys=True).encode()
