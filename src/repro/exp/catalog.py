"""Named sweeps runnable from the CLI (``python -m repro.exp run <name>``).

Each entry is a zero-argument factory returning a fresh :class:`Sweep`;
benchmarks build theirs inline, but the canonical grids live here so
``python -m repro.exp list`` shows what the repo can run.
"""

from __future__ import annotations

from typing import Callable

from repro.exp.sweep import Sweep

__all__ = ["SWEEPS", "get_sweep", "register_sweep", "sweep_names"]

SWEEPS: dict[str, Callable[[], Sweep]] = {}


def register_sweep(name: str):
    def deco(factory: Callable[[], Sweep]) -> Callable[[], Sweep]:
        if name in SWEEPS:
            raise ValueError(f"sweep {name!r} already registered")
        SWEEPS[name] = factory
        return factory

    return deco


def get_sweep(name: str) -> Sweep:
    try:
        factory = SWEEPS[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep {name!r}; available: {sweep_names()}") from None
    return factory()


def sweep_names() -> list[str]:
    return sorted(SWEEPS)


@register_sweep("smoke")
def _smoke() -> Sweep:
    """4 cheap points: physical-stack ping over a small RTT axis (CI's
    sweep-smoke job runs this with ``--workers 2``)."""
    return (Sweep("smoke", "stack_ping",
                  base_params={"stack": "physical", "probes": 6},
                  seed=1)
            .add_axis("rtt_ms", [20.0, 50.0, 100.0, 200.0]))


@register_sweep("churn8")
def _churn8() -> Sweep:
    """The 8-seed churn-recovery sweep (full horizon) — the workload
    ``bench_sweep_parallel`` times serial vs sharded."""
    return (Sweep("churn8", "churn_recovery",
                  metrics=["*.driver.repair.seconds",
                           "*.driver.rvz.failover_seconds",
                           "*.driver.frames.dropped_outage"])
            .add_axis("seed", [7, 11, 23, 42, 101, 131, 151, 173]))


@register_sweep("fig08")
def _fig08() -> Sweep:
    """Figure 8: netperf per-host bandwidth vs virtual cluster size."""
    sizes = [8, 16, 24, 32, 48, 64]
    return (Sweep("fig08", "netperf_cluster")
            .zip_axes(n_hosts=sizes, seed=[50 + n for n in sizes]))


@register_sweep("table2")
def _table2() -> Sweep:
    """Table II: ICMP RTT for every site pair across all three stacks."""
    from repro.scenarios.sites import pair_rtt_ms

    pairs = [("hku1", "siat"), ("hku1", "pu"), ("siat", "pu")]
    return (Sweep("table2", "stack_ping",
                  base_params={"bandwidth_mbps": 50.0, "probes": 12})
            .zip_axes(pair=[f"{a}-{b}" for a, b in pairs],
                      rtt_ms=[pair_rtt_ms(a, b) for a, b in pairs])
            .zip_axes(stack=["physical", "wavnet", "ipop"],
                      seed=[1, 2, 3]))


@register_sweep("nat_matrix")
def _nat_matrix() -> Sweep:
    """Hole punching across every NAT-type pairing (Table 2 of §II.B)."""
    types = ["full-cone", "restricted-cone", "port-restricted"]
    return (Sweep("nat_matrix", "wavnet_mesh", base_params={"n_hosts": 2})
            .add_axis("nat_type", types))


@register_sweep("planetlab")
def _planetlab() -> Sweep:
    """Grouping quality across PlanetLab-matrix seeds (Figs 12-13)."""
    return (Sweep("planetlab", "planetlab_grouping",
                  base_params={"n_hosts": 200, "k": 8})
            .add_axis("seed", [3, 5, 8, 13]))
