"""Parameter sweeps: named axes expanded into a grid of specs.

A :class:`Sweep` owns a scenario name, base parameters, and an ordered
list of *axis groups*. Each group is either a single axis (cartesian
with every other group) or several axes zipped together (they advance
in lockstep — e.g. ``n_hosts`` and the per-size ``seed`` of Fig 8).
Point order is deterministic: the cartesian product iterates groups in
the order they were added, last group fastest — so point indices are
stable and the artifact store can key on them.

The reserved axis name ``seed`` feeds :attr:`ExperimentSpec.seed`
instead of the scenario params, which is how multi-seed sweeps
(``BENCH_churn``'s seeds axis) are expressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Iterable, Sequence

from repro.exp.spec import ExperimentSpec

__all__ = ["Sweep", "SweepPoint"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: its stable index, axis coordinates, and spec."""

    index: int
    coords: dict
    spec: ExperimentSpec

    @property
    def key(self) -> str:
        """Artifact-store key: readable index + spec content hash."""
        return f"p{self.index:04d}-{self.spec.digest()}"


class Sweep:
    """A named grid of :class:`ExperimentSpec` over one scenario."""

    def __init__(self, name: str, scenario: str, base_params: dict | None = None,
                 seed: int = 0, metrics: Iterable[str] = (),
                 traces: Iterable[str] = ()) -> None:
        self.name = name
        self.scenario = scenario
        self.base_params = dict(base_params or {})
        self.seed = seed
        self.metrics = tuple(metrics)
        self.traces = tuple(traces)
        # Each group: list of (axis_name, values) with equal lengths.
        self._groups: list[list[tuple[str, list]]] = []

    # -- axes ----------------------------------------------------------
    def add_axis(self, name: str, values: Sequence) -> "Sweep":
        """Add one axis, cartesian against every existing group."""
        values = list(values)
        if not values:
            raise ValueError(f"axis {name!r} has no values")
        self._check_new_names([name])
        self._groups.append([(name, values)])
        return self

    def zip_axes(self, **axes: Sequence) -> "Sweep":
        """Add several axes advancing in lockstep (one group)."""
        if not axes:
            raise ValueError("zip_axes() needs at least one axis")
        items = [(name, list(values)) for name, values in axes.items()]
        lengths = {len(v) for _n, v in items}
        if len(lengths) != 1:
            raise ValueError(
                f"zipped axes must have equal lengths, got "
                f"{ {n: len(v) for n, v in items} }")
        if 0 in lengths:
            raise ValueError("zipped axes have no values")
        self._check_new_names([n for n, _v in items])
        self._groups.append(items)
        return self

    def _check_new_names(self, names: Iterable[str]) -> None:
        seen = {n for group in self._groups for n, _v in group}
        seen.update(self.base_params)
        for name in names:
            if name in seen:
                raise ValueError(f"duplicate axis/param {name!r}")

    def axis_names(self) -> list[str]:
        return [n for group in self._groups for n, _v in group]

    def __len__(self) -> int:
        n = 1
        for group in self._groups:
            n *= len(group[0][1])
        return n

    # -- expansion ------------------------------------------------------
    def points(self) -> list[SweepPoint]:
        """The full grid in deterministic order (last group fastest)."""
        if not self._groups:
            rows: Iterable[tuple] = [()]
        else:
            per_group = [
                [dict(zip([n for n, _v in group], combo))
                 for combo in zip(*[v for _n, v in group])]
                for group in self._groups
            ]
            rows = product(*per_group)
        points = []
        for index, row in enumerate(rows):
            coords: dict[str, Any] = {}
            for part in row:
                coords.update(part)
            params = dict(self.base_params)
            params.update(coords)
            seed = params.pop("seed", self.seed)
            points.append(SweepPoint(
                index=index,
                coords=coords,
                spec=ExperimentSpec(scenario=self.scenario, params=params,
                                    seed=seed, metrics=self.metrics,
                                    traces=self.traces),
            ))
        return points

    def specs(self) -> list[ExperimentSpec]:
        return [p.spec for p in self.points()]

    def describe(self) -> dict:
        """JSON-ready summary (stored in the sweep manifest)."""
        return {
            "name": self.name,
            "scenario": self.scenario,
            "base_params": dict(self.base_params),
            "seed": self.seed,
            "metrics": list(self.metrics),
            "traces": list(self.traces),
            "axes": [{n: list(v) for n, v in group} for group in self._groups],
            "n_points": len(self),
        }

    def __repr__(self) -> str:
        axes = ", ".join(self.axis_names())
        return f"Sweep({self.name!r}, scenario={self.scenario!r}, axes=[{axes}], n={len(self)})"
