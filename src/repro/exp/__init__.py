"""Experiment plane: declarative specs, parameter sweeps, and a
multi-process sharded sweep runner.

The paper's evaluation is a grid of sweeps — NAT-type pairs (Table 2),
RTT x bandwidth points (Figs 6-7), host counts (Fig 8), seeds x fault
schedules (churn). Every simulation is deterministic and independent,
so this package makes each one a picklable :class:`ExperimentSpec`
(scenario name + params + seed + metric/trace selections, resolved
against the scenario registry), expands grids with :class:`Sweep`,
and executes them with :class:`SweepRunner` — serially or fanned out
over ``multiprocessing`` workers, with an on-disk artifact store and
resume-from-cache. :mod:`repro.exp.aggregate` reshapes the resulting
envelopes into the row/series tables the benchmarks print.

CLI: ``python -m repro.exp run <sweep> --workers N`` (named sweeps live
in :mod:`repro.exp.catalog`).
"""

from repro.exp import aggregate
from repro.exp.catalog import get_sweep, sweep_names
from repro.exp.runner import (
    PointResult,
    SweepError,
    SweepResult,
    SweepRunner,
    default_sweep_root,
    run_sweep,
)
from repro.exp.spec import (
    ExperimentSpec,
    ScenarioRegistry,
    canonical_envelope,
    envelope_bytes,
    get_scenario,
    registry,
    run_spec,
    scenario,
    scenario_names,
)
from repro.exp.sweep import Sweep, SweepPoint

__all__ = [
    "ExperimentSpec",
    "PointResult",
    "ScenarioRegistry",
    "Sweep",
    "SweepError",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "aggregate",
    "canonical_envelope",
    "default_sweep_root",
    "envelope_bytes",
    "get_scenario",
    "get_sweep",
    "registry",
    "run_spec",
    "run_sweep",
    "scenario",
    "scenario_names",
    "sweep_names",
]
