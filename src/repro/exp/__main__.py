"""CLI for the experiment plane.

Usage::

    python -m repro.exp list
    python -m repro.exp run <sweep> [--workers N] [--out DIR] [--force]

``run`` executes a named sweep from :mod:`repro.exp.catalog`, streaming
one line per point, and leaves the artifacts under
``benchmarks/out/sweeps/<name>/`` (resumable: re-running skips cached
points unless ``--force``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exp.catalog import SWEEPS, get_sweep, sweep_names
from repro.exp.runner import SweepError, SweepRunner


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in sweep_names():
        sweep = SWEEPS[name]()
        doc = (SWEEPS[name].__doc__ or "").strip().split("\n")[0]
        print(f"{name:12s} {len(sweep):3d} points  scenario={sweep.scenario}"
              f"  {doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        sweep = get_sweep(args.sweep)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    def progress(result) -> None:
        tag = "cached" if result.cached else f"{result.wall_seconds:6.2f}s"
        coords = " ".join(f"{k}={v}" for k, v in result.coords.items())
        print(f"  [{result.index + 1}/{len(sweep)}] {tag:>8s}  {coords}")

    runner = SweepRunner(sweep, workers=args.workers,
                         out_dir=Path(args.out) if args.out else None,
                         force=args.force, progress=progress)
    print(f"sweep {sweep.name!r}: {len(sweep)} points, "
          f"workers={args.workers}, out={runner.out_dir}")
    try:
        result = runner.run()
    except SweepError as exc:
        for index, err in sorted(exc.failures.items()):
            print(f"point {index} failed:\n{err}", file=sys.stderr)
        return 1
    executed = len(result.executed_indices)
    cached = len(result.cached_indices)
    wall = sum(r.wall_seconds for r in result)
    print(f"done: {executed} executed, {cached} cached, "
          f"{wall:.2f}s simulated-run wall time")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exp",
        description="Run parameter sweeps over registered scenarios.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list named sweeps").set_defaults(
        func=_cmd_list)

    run = sub.add_parser("run", help="run a named sweep")
    run.add_argument("sweep", help="sweep name (see `list`)")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes (default 1 = serial)")
    run.add_argument("--out", default=None,
                     help="artifact directory (default benchmarks/out/sweeps)")
    run.add_argument("--force", action="store_true",
                     help="re-run every point, ignoring cached artifacts")
    run.set_defaults(func=_cmd_run)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
