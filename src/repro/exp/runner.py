"""Sweep execution: serial or sharded over worker processes, with an
on-disk artifact store and resume-from-cache.

Layout of the artifact store (``benchmarks/out/sweeps/<name>/`` by
default)::

    manifest.json            # sweep description + point keys
    p0000-<hash>.json        # one result envelope per completed point
    p0001-<hash>.json
    ...

A point's artifact name embeds a content hash of its canonical spec, so
editing a sweep invalidates exactly the points whose specs changed;
completed points are skipped on re-run (resume) unless ``force=True``.

With ``workers > 1`` the pending points are dealt round-robin into one
shard per worker; each worker process runs its specs with
:func:`repro.exp.spec.run_spec`, writes every envelope to the store the
moment it completes (so a crashed sweep resumes from what finished),
and streams the envelope back to the parent over a queue. Simulations
are deterministic and independent, so the sharded result is
byte-identical to the serial one (``envelope_bytes``).

A spec carrying ``partitions > 1`` (for a scenario with a registered
pdes merger) is executed through :func:`repro.sim.pdes.run_partitioned`
instead — the point itself fans out into one process per site
partition. That composes with sweep sharding: the per-point process
pool is spun up inside whichever worker runs the point.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional

from repro.exp.spec import ExperimentSpec, envelope_bytes
from repro.exp.sweep import Sweep, SweepPoint

__all__ = ["PointResult", "SweepError", "SweepResult", "SweepRunner",
           "default_sweep_root", "run_sweep"]


def default_sweep_root() -> pathlib.Path:
    """``$REPRO_SWEEP_DIR`` if set; else ``benchmarks/out/sweeps`` next
    to this source tree; else ``./sweeps``."""
    env = os.environ.get("REPRO_SWEEP_DIR")
    if env:
        return pathlib.Path(env)
    repo = pathlib.Path(__file__).resolve().parents[3]
    if (repo / "benchmarks").is_dir():
        return repo / "benchmarks" / "out" / "sweeps"
    return pathlib.Path.cwd() / "sweeps"


class SweepError(RuntimeError):
    """One or more sweep points failed; carries per-point errors."""

    def __init__(self, failures: dict[int, str]) -> None:
        self.failures = failures
        lines = "\n".join(f"  point {i}: {err.splitlines()[-1]}"
                          for i, err in sorted(failures.items()))
        super().__init__(f"{len(failures)} sweep point(s) failed:\n{lines}")


@dataclass
class PointResult:
    """One completed point: its envelope plus execution bookkeeping."""

    index: int
    coords: dict
    envelope: dict
    cached: bool

    @property
    def payload(self) -> dict:
        return self.envelope["payload"]

    @property
    def wall_seconds(self) -> float:
        return self.envelope["wall_seconds"]

    def envelope_bytes(self) -> bytes:
        return envelope_bytes(self.envelope)


class SweepResult:
    """All point results of one runner invocation, in point order."""

    def __init__(self, sweep: Sweep, points: list[PointResult],
                 wall_seconds: float, workers: int) -> None:
        self.sweep = sweep
        self.points = points
        self.wall_seconds = wall_seconds
        self.workers = workers

    @property
    def envelopes(self) -> list[dict]:
        return [p.envelope for p in self.points]

    @property
    def payloads(self) -> list[dict]:
        return [p.payload for p in self.points]

    @property
    def cached_indices(self) -> list[int]:
        return [p.index for p in self.points if p.cached]

    @property
    def executed_indices(self) -> list[int]:
        return [p.index for p in self.points if not p.cached]

    def result_bytes(self) -> bytes:
        """Canonical bytes of every envelope, for byte-identity checks."""
        return b"\n".join(p.envelope_bytes() for p in self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def __repr__(self) -> str:
        return (f"SweepResult({self.sweep.name!r}, n={len(self.points)}, "
                f"cached={len(self.cached_indices)}, "
                f"wall={self.wall_seconds:.2f}s, workers={self.workers})")


def _shard_worker(shard: list, out_dir: str, queue) -> None:
    """Worker-process entry point: run each (index, spec) of the shard,
    persist the envelope, stream it back. Errors are reported per point
    so one bad spec does not sink the shard."""
    from repro.sim.pdes import execute_spec

    for index, spec in shard:
        try:
            envelope = execute_spec(spec)
            _write_artifact(pathlib.Path(out_dir), _point_key(index, spec),
                            envelope)
            queue.put((index, envelope, None))
        except BaseException as exc:  # noqa: BLE001 - crosses process boundary
            import traceback
            queue.put((index, None,
                       f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"))


def _point_key(index: int, spec: ExperimentSpec) -> str:
    return f"p{index:04d}-{spec.digest()}"


def _write_artifact(out_dir: pathlib.Path, key: str, envelope: dict) -> None:
    """Atomic write: a crashed worker never leaves a half-written
    artifact for resume to trip over."""
    path = out_dir / f"{key}.json"
    tmp = out_dir / f".{key}.json.tmp.{os.getpid()}"
    tmp.write_text(json.dumps(envelope, indent=1) + "\n")
    tmp.replace(path)


class SweepRunner:
    """Executes a :class:`Sweep` serially or sharded over processes.

    * ``workers`` — 1 runs in-process; N > 1 forks N worker processes,
      each owning a round-robin shard of the pending points.
    * ``resume``  — reuse completed artifacts whose spec hash matches
      (default). ``force=True`` re-executes everything.
    * ``out_dir`` — artifact store; default
      ``benchmarks/out/sweeps/<sweep.name>``.
    """

    def __init__(self, sweep: Sweep, workers: int = 1,
                 out_dir: Optional[pathlib.Path] = None, resume: bool = True,
                 force: bool = False,
                 progress: Optional[Callable[["PointResult"], None]] = None,
                 ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.sweep = sweep
        self.workers = workers
        self.out_dir = pathlib.Path(out_dir) if out_dir is not None \
            else default_sweep_root() / sweep.name
        self.resume = resume and not force
        self.force = force
        self._progress = progress or (lambda _result: None)

    # -- cache ----------------------------------------------------------
    def _load_cached(self, point: SweepPoint) -> Optional[dict]:
        path = self.out_dir / f"{point.key}.json"
        if not path.is_file():
            return None
        try:
            envelope = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        # The key hash already pins the spec, but verify: a truncated
        # hash collision or hand-edited artifact must not poison a run.
        if envelope.get("spec") != point.spec.canonical():
            return None
        return envelope

    def _write_manifest(self, points: list[SweepPoint]) -> None:
        manifest = dict(self.sweep.describe())
        manifest["points"] = [
            {"index": p.index, "key": p.key, "coords": p.coords}
            for p in points
        ]
        _write_artifact(self.out_dir, "manifest",
                        manifest)  # manifest.json, atomically

    # -- execution ------------------------------------------------------
    def run(self) -> SweepResult:
        t0 = perf_counter()
        points = self.sweep.points()
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self._write_manifest(points)

        results: dict[int, PointResult] = {}
        pending: list[SweepPoint] = []
        for point in points:
            cached = self._load_cached(point) if self.resume else None
            if cached is not None:
                result = PointResult(point.index, point.coords, cached,
                                     cached=True)
                results[point.index] = result
                self._progress(result)
            else:
                pending.append(point)

        if pending:
            if self.workers == 1:
                self._run_serial(pending, results)
            else:
                self._run_sharded(pending, results)

        ordered = [results[p.index] for p in points]
        return SweepResult(self.sweep, ordered,
                           wall_seconds=perf_counter() - t0,
                           workers=self.workers)

    def _run_serial(self, pending: list[SweepPoint],
                    results: dict[int, PointResult]) -> None:
        from repro.sim.pdes import execute_spec

        failures: dict[int, str] = {}
        for point in pending:
            try:
                envelope = execute_spec(point.spec)
            except Exception as exc:  # noqa: BLE001
                import traceback
                failures[point.index] = f"{exc}\n{traceback.format_exc()}"
                continue
            _write_artifact(self.out_dir, point.key, envelope)
            result = PointResult(point.index, point.coords, envelope,
                                 cached=False)
            results[point.index] = result
            self._progress(result)
        if failures:
            raise SweepError(failures)

    def _run_sharded(self, pending: list[SweepPoint],
                     results: dict[int, PointResult]) -> None:
        # Fork when available (cheap, inherits sys.path); spawn works
        # too — specs are picklable and workers re-resolve scenarios by
        # name through the registry.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        n_workers = min(self.workers, len(pending))
        shards: list[list] = [[] for _ in range(n_workers)]
        by_index = {p.index: p for p in pending}
        for i, point in enumerate(pending):
            shards[i % n_workers].append((point.index, point.spec))

        queue = ctx.Queue()
        procs = [ctx.Process(target=_shard_worker,
                             args=(shard, str(self.out_dir), queue),
                             name=f"sweep-{self.sweep.name}-w{i}", daemon=True)
                 for i, shard in enumerate(shards)]
        for proc in procs:
            proc.start()

        failures: dict[int, str] = {}
        received = 0
        try:
            while received < len(pending):
                try:
                    index, envelope, error = queue.get(timeout=1.0)
                except Exception:  # queue.Empty: check for dead workers
                    if any(p.exitcode not in (0, None) for p in procs):
                        break  # a worker was killed mid-shard
                    continue
                received += 1
                if error is not None:
                    failures[index] = error
                    continue
                point = by_index[index]
                result = PointResult(index, point.coords, envelope,
                                     cached=False)
                results[index] = result
                self._progress(result)
        finally:
            for proc in procs:
                proc.join()
        dead = [p.name for p in procs if p.exitcode not in (0, None)]
        if dead and received < len(pending):
            failures.setdefault(-1, f"worker(s) died: {dead}")
        if failures:
            raise SweepError(failures)


def run_sweep(sweep: Sweep, workers: int = 1, **kwargs) -> SweepResult:
    """One-call convenience: ``run_sweep(sweep, workers=4)``."""
    return SweepRunner(sweep, workers=workers, **kwargs).run()
