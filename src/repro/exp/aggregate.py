"""Merging sweep envelopes into the row/series tables benches print.

These helpers take a :class:`~repro.exp.runner.SweepResult` (or a bare
list of :class:`~repro.exp.runner.PointResult`) and reshape it: one
column of payload values, a (xs, ys) series along an axis, groups per
axis value, concatenated per-point sample lists, or summary
distributions — the forms ``render_table`` / ``render_series``
(:mod:`repro.analysis.tables`) consume.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

__all__ = ["column", "distribution", "group_by", "merge_samples",
           "metric_column", "series", "table_rows"]


def _points(result) -> Sequence:
    return result.points if hasattr(result, "points") else list(result)


def column(result, key: str, default: Any = None) -> list:
    """``payload[key]`` for every point, in point order."""
    return [p.payload.get(key, default) for p in _points(result)]


def metric_column(result, path: str, field: str = "value") -> list:
    """``envelope["metrics"][path][field]`` for every point (exported
    metric selections rather than scenario payloads)."""
    return [p.envelope["metrics"][path][field] for p in _points(result)]


def series(result, axis: str, key: str) -> "tuple[list, list]":
    """(xs, ys) along one axis: coordinate vs payload value, sorted by
    the axis coordinate (stable for equal coordinates)."""
    pts = sorted(_points(result), key=lambda p: p.coords[axis])
    return ([p.coords[axis] for p in pts],
            [p.payload.get(key) for p in pts])


def group_by(result, axis: str) -> dict:
    """Axis value -> [points], insertion-ordered by first appearance."""
    groups: dict[Any, list] = {}
    for p in _points(result):
        groups.setdefault(p.coords[axis], []).append(p)
    return groups


def merge_samples(result, key: str) -> list:
    """Concatenate per-point payload sample lists (e.g. every seed's
    ``repair_seconds``) into one flat list, in point order."""
    merged: list = []
    for p in _points(result):
        merged.extend(p.payload.get(key) or ())
    return merged


def distribution(samples: Iterable[float], round_to: int = 3) -> dict:
    """count/mean/p50/p95/max summary of a sample list (the shape the
    churn bench reports)."""
    samples = list(samples)
    if not samples:
        return {"count": 0}
    arr = np.asarray(samples, dtype=float)
    return {
        "count": len(samples),
        "mean_s": round(float(arr.mean()), round_to),
        "p50_s": round(float(np.percentile(arr, 50)), round_to),
        "p95_s": round(float(np.percentile(arr, 95)), round_to),
        "max_s": round(float(arr.max()), round_to),
    }


def table_rows(result, row_axis: str, col_axis: str, key: str,
               row_label: Callable[[Any], Any] | None = None) -> list[list]:
    """Pivot: one row per ``row_axis`` value, one cell per ``col_axis``
    value (in first-appearance order), cells from ``payload[key]``."""
    cols: list = []
    cells: dict[Any, dict] = {}
    for p in _points(result):
        r, c = p.coords[row_axis], p.coords[col_axis]
        if c not in cols:
            cols.append(c)
        cells.setdefault(r, {})[c] = p.payload.get(key)
    rows = []
    for r, by_col in cells.items():
        label = row_label(r) if row_label is not None else r
        rows.append([label] + [by_col.get(c) for c in cols])
    return rows
