"""ASCII tables, figure-shaped series dumps, and PASS/FAIL shape checks.

Every benchmark prints (a) the same rows/series the paper's table or
figure reports and (b) explicit shape checks — the comparative claims
("WAVNet ≥ IPOP here", "flat in cluster size", "crossover near X") that
the reproduction is supposed to preserve.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["ShapeCheck", "render_series", "render_table"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def render_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    out = [title, sep, line(headers), sep]
    out.extend(line(r) for r in str_rows)
    out.append(sep)
    return "\n".join(out)


def render_series(title: str, x_label: str, xs, series: dict) -> str:
    """Figure-shaped output: one row per x, one column per curve."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return render_table(title, headers, rows)


class ShapeCheck:
    """Collects named pass/fail assertions about result *shape*."""

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment
        self.results: list[tuple[str, bool, str]] = []

    def expect(self, name: str, condition: bool, detail: str = "") -> bool:
        self.results.append((name, bool(condition), detail))
        return bool(condition)

    @property
    def all_passed(self) -> bool:
        return all(ok for _n, ok, _d in self.results)

    def render(self) -> str:
        out = [f"shape checks [{self.experiment}]"]
        for name, ok, detail in self.results:
            mark = "PASS" if ok else "FAIL"
            suffix = f"  ({detail})" if detail else ""
            out.append(f"  [{mark}] {name}{suffix}")
        return "\n".join(out)

    def print_and_assert(self) -> None:
        print(self.render())
        failed = [n for n, ok, _d in self.results if not ok]
        assert not failed, f"{self.experiment}: shape checks failed: {failed}"
