"""Result rendering and shape checks for the benchmark harness."""

from repro.analysis.tables import ShapeCheck, render_series, render_table

__all__ = ["ShapeCheck", "render_series", "render_table"]
