"""Packet taps: pcap-style capture hooks for any traffic point.

A :class:`PacketTap` collects :class:`TapRecord` entries — timestamp,
capture point, direction, size, addresses, and a payload summary — from
whatever objects it is attached to.  Attachment points expose
``add_tap(tap)`` (L2 :class:`~repro.net.l2.Port`, switches/bridges, UDP
sockets, network stacks, and WAVNet connections all do); the generic
:func:`attach_tap` dispatches on that method so capture code does not
care what it is tapping.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass
from typing import Optional

__all__ = ["PacketTap", "TapRecord", "attach_tap"]


@dataclass(frozen=True)
class TapRecord:
    """One captured frame/datagram/packet."""

    t: float              # sim time of capture
    point: str            # where it was captured (port/socket/conn name)
    direction: str        # "tx" | "rx" | "fwd"
    kind: str             # "eth" | "udp" | "ip" | ...
    size: int
    src: Optional[str] = None
    dst: Optional[str] = None
    info: Optional[str] = None  # payload summary (inner type name, etc.)


class PacketTap:
    """Capture buffer with an optional size cap (drop-head disabled:
    when full, later records are counted but not stored, like a
    fixed-size pcap ring that reports truncation)."""

    def __init__(self, sim, name: str = "tap", capacity: Optional[int] = None) -> None:
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.records: list[TapRecord] = []
        self.truncated = 0

    # -- capture entry points (called from the tapped objects) ----------
    def record(self, point: str, direction: str, kind: str, size: int,
               src=None, dst=None, info: Optional[str] = None) -> None:
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.truncated += 1
            return
        self.records.append(TapRecord(
            self.sim.now, point, direction, kind, int(size),
            None if src is None else str(src),
            None if dst is None else str(dst), info))

    def frame(self, point: str, direction: str, frame) -> None:
        """Capture an Ethernet frame (any object with src/dst/size/payload)."""
        self.record(point, direction, "eth", frame.size, frame.src, frame.dst,
                    type(frame.payload).__name__)

    def packet(self, point: str, direction: str, packet) -> None:
        """Capture an IPv4 packet."""
        self.record(point, direction, "ip", packet.size, packet.src, packet.dst,
                    type(packet.payload).__name__)

    def datagram(self, point: str, direction: str, size: int,
                 src=None, dst=None, info: Optional[str] = None) -> None:
        """Capture a UDP payload / WAVNet tunnel datagram."""
        self.record(point, direction, "udp", size, src, dst, info)

    # -- inspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def filter(self, point: Optional[str] = None, direction: Optional[str] = None,
               kind: Optional[str] = None) -> list[TapRecord]:
        return [r for r in self.records
                if (point is None or r.point == point)
                and (direction is None or r.direction == direction)
                and (kind is None or r.kind == kind)]

    def total_bytes(self, **where) -> int:
        return sum(r.size for r in self.filter(**where))

    # -- export ---------------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(asdict(r), default=str) for r in self.records)

    def dump_jsonl(self, path) -> pathlib.Path:
        path = pathlib.Path(path)
        text = self.to_jsonl()
        path.write_text(text + "\n" if text else "")
        return path

    def __repr__(self) -> str:
        return f"PacketTap({self.name}, n={len(self.records)})"


def attach_tap(obj, tap: PacketTap) -> PacketTap:
    """Attach ``tap`` to any tappable object (duck-typed ``add_tap``)."""
    add = getattr(obj, "add_tap", None)
    if add is None:
        raise TypeError(f"{type(obj).__name__} does not support packet taps")
    add(tap)
    return tap
