"""Poor-man's process profiler for the simulation kernel.

When enabled, the engine calls :meth:`StepProfiler.account` once per
process resume with the wall-clock time the generator ran; the profiler
aggregates by process name, giving "which processes burn the host CPU"
without any external tooling.  Process names repeat across instances
(``wav-rx:...``, ``tcp-send:...``) so grouping is also available by name
prefix.

Profiling is **off by default**: the two ``perf_counter()`` calls per
resume cost more than most resumes do. Call ``sim.profile.enable()``
before the run to turn accounting on.
"""

from __future__ import annotations

__all__ = ["StepProfiler"]


class StepProfiler:
    """Events-dispatched and wall-time accounting per named process."""

    __slots__ = ("stats", "enabled")

    def __init__(self, enabled: bool = False) -> None:
        self.stats: dict[str, list] = {}  # name -> [steps, wall_seconds]
        self.enabled = enabled

    def enable(self) -> "StepProfiler":
        """Turn per-resume accounting on (idempotent); returns self."""
        self.enabled = True
        return self

    def disable(self) -> "StepProfiler":
        self.enabled = False
        return self

    def account(self, name: str, wall: float) -> None:
        entry = self.stats.get(name)
        if entry is None:
            self.stats[name] = [1, wall]
        else:
            entry[0] += 1
            entry[1] += wall

    # -- inspection -----------------------------------------------------
    def steps(self, name: str) -> int:
        entry = self.stats.get(name)
        return entry[0] if entry else 0

    def wall(self, name: str) -> float:
        entry = self.stats.get(name)
        return entry[1] if entry else 0.0

    def total_steps(self) -> int:
        return sum(e[0] for e in self.stats.values())

    def total_wall(self) -> float:
        return sum(e[1] for e in self.stats.values())

    def by_prefix(self, sep: str = ":") -> dict[str, list]:
        """Aggregate by name prefix (``pipe:dc.l0.ab`` -> ``pipe``)."""
        out: dict[str, list] = {}
        for name, (steps, wall) in self.stats.items():
            prefix = name.split(sep, 1)[0]
            entry = out.setdefault(prefix, [0, 0.0])
            entry[0] += steps
            entry[1] += wall
        return out

    def table(self, limit: int | None = None, by_prefix: bool = False) -> list[tuple]:
        """(name, steps, wall_seconds) rows, hottest wall-time first."""
        stats = self.by_prefix() if by_prefix else self.stats
        rows = sorted(((n, s, w) for n, (s, w) in stats.items()),
                      key=lambda row: row[2], reverse=True)
        return rows[:limit] if limit is not None else rows

    def render(self, limit: int = 20, by_prefix: bool = True) -> str:
        rows = self.table(limit=limit, by_prefix=by_prefix)
        width = max((len(r[0]) for r in rows), default=7)
        lines = [f"{'process':<{width}}  {'steps':>10}  {'wall(s)':>10}"]
        for name, steps, wall in rows:
            lines.append(f"{name:<{width}}  {steps:>10}  {wall:>10.4f}")
        return "\n".join(lines)

    def clear(self) -> None:
        self.stats.clear()
