"""Observability spine: scoped metrics, trace spans, and packet taps.

Every layer of the reproduction reports into this package instead of
keeping ad-hoc probe objects: the simulator owns one
:class:`MetricsRegistry` (counters / gauges / time series / interval
rates / histograms addressable by dotted path, e.g.
``hostA.driver.pulse.tx``), one :class:`Tracer` (spans and point events
recorded to a structured in-sim log with JSONL export), and one
:class:`StepProfiler` (events dispatched and wall-time per named
process).  :class:`PacketTap` objects attach to L2 ports, bridges, UDP
sockets, network stacks, and WAVNet connections to capture frame and
datagram records pcap-style.

The package deliberately imports nothing from ``repro.sim`` — metrics
and traces only need an object with a ``.now`` attribute — so the
simulation kernel can own the handles without an import cycle.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    IntervalRate,
    MetricsRegistry,
    MetricsScope,
    TimeSeries,
    record_any,
)
from repro.obs.profiler import StepProfiler
from repro.obs.taps import PacketTap, TapRecord, attach_tap
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "IntervalRate",
    "MetricsRegistry",
    "MetricsScope",
    "PacketTap",
    "Span",
    "StepProfiler",
    "TapRecord",
    "TimeSeries",
    "Tracer",
    "attach_tap",
    "record_any",
]
