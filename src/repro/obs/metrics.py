"""Metric primitives and the hierarchical registry.

Metric names form a dot-separated hierarchy (``hostA.driver.pulse.tx``).
The registry is get-or-create: asking twice for the same path returns
the same object, and asking for an existing path as a different metric
kind is an error.  :meth:`MetricsRegistry.scope` returns a view that
prefixes every path, so a subsystem can hand out ``scope("hostA.driver")``
and keep its own metric names relative.

Every metric additionally supports :meth:`export` — a JSON-ready dict
carrying the *full* recorded data (not just the ``describe()`` summary)
— and :meth:`MetricsRegistry.export` selects metrics by dotted-path
glob, which is how the experiment plane (:mod:`repro.exp`) ships
selected measurements out of worker processes in result envelopes.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Any, Callable, Iterator

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "IntervalRate",
    "MetricsRegistry",
    "MetricsScope",
    "TimeSeries",
    "path_matches",
    "record_any",
]


class TimeSeries:
    """Append-only (time, value) log with NumPy export and resampling."""

    def __init__(self, sim, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, value: float) -> None:
        self._times.append(self.sim.now)
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def mean(self) -> float:
        return float(np.mean(self._values)) if self._values else float("nan")

    def max(self) -> float:
        return float(np.max(self._values)) if self._values else float("nan")

    def min(self) -> float:
        return float(np.min(self._values)) if self._values else float("nan")

    def between(self, t0: float, t1: float) -> "tuple[np.ndarray, np.ndarray]":
        """Samples with t0 <= time < t1, as (times, values) arrays."""
        t = self.times
        mask = (t >= t0) & (t < t1)
        return t[mask], self.values[mask]

    def resample(self, interval: float, t0: float | None = None, t1: float | None = None) -> "tuple[np.ndarray, np.ndarray]":
        """Mean value per ``interval``-wide bucket over [t0, t1).

        Buckets with no samples yield NaN so gaps (e.g. VM downtime)
        remain visible in figure-shaped output.
        """
        t, v = self.times, self.values
        if t.size == 0:
            return np.empty(0), np.empty(0)
        lo = t[0] if t0 is None else t0
        hi = t[-1] + interval if t1 is None else t1
        edges = np.arange(lo, hi + interval * 0.5, interval)
        if edges.size < 2:
            return np.empty(0), np.empty(0)
        n_buckets = edges.size - 1
        idx = np.digitize(t, edges) - 1
        inside = (idx >= 0) & (idx < n_buckets)
        idx = idx[inside]
        counts = np.bincount(idx, minlength=n_buckets)
        sums = np.bincount(idx, weights=v[inside], minlength=n_buckets)
        out = np.full(n_buckets, np.nan)
        filled = counts > 0
        out[filled] = sums[filled] / counts[filled]
        return edges[:-1], out

    def describe(self) -> dict:
        return {"kind": "series", "n": len(self), "mean": self.mean(),
                "min": self.min(), "max": self.max()}

    def export(self) -> dict:
        return {"kind": "series", "times": list(self._times),
                "values": list(self._values)}


class Counter:
    """Named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"

    def describe(self) -> dict:
        return {"kind": "counter", "value": self.value}

    export = describe


class Gauge:
    """Named instantaneous value (set/inc/dec semantics)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"

    def describe(self) -> dict:
        return {"kind": "gauge", "value": self.value}

    export = describe


class Histogram:
    """Value distribution (e.g. per-punch latency, per-RPC retries)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return float(np.sum(self._values)) if self._values else 0.0

    def mean(self) -> float:
        return float(np.mean(self._values)) if self._values else float("nan")

    def percentile(self, q: float) -> float:
        """q-th percentile in [0, 100]."""
        return float(np.percentile(self._values, q)) if self._values else float("nan")

    def describe(self) -> dict:
        return {"kind": "histogram", "n": self.count, "sum": self.sum,
                "mean": self.mean(), "p50": self.percentile(50),
                "p99": self.percentile(99)}

    def export(self) -> dict:
        return {"kind": "histogram", "values": list(self._values)}


class IntervalRate:
    """Accumulates a quantity (e.g. bytes) and reports per-interval rates.

    Used for netperf-style interim result reporting: call :meth:`add` on
    every delivery, :meth:`snapshot` from a periodic polling process.
    """

    def __init__(self, sim, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.total = 0.0
        self._last_total = 0.0
        self._last_time = sim.now
        self.series = TimeSeries(sim, name=f"{name}.rate")

    def add(self, amount: float) -> None:
        self.total += amount

    def snapshot(self) -> float:
        """Rate (units/second) since the previous snapshot; records it."""
        now = self.sim.now
        dt = now - self._last_time
        delta = self.total - self._last_total
        rate = delta / dt if dt > 0 else 0.0
        self._last_total = self.total
        self._last_time = now
        self.series.record(rate)
        return rate

    def overall_rate(self, since: float = 0.0) -> float:
        dt = self.sim.now - since
        return self.total / dt if dt > 0 else 0.0

    def describe(self) -> dict:
        return {"kind": "rate", "total": self.total, "snapshots": len(self.series)}

    def export(self) -> dict:
        return {"kind": "rate", "total": self.total,
                "snapshot_times": list(self.series._times),
                "snapshot_rates": list(self.series._values)}


def path_matches(path: str, patterns: Iterable[str]) -> bool:
    """True if ``path`` matches any glob, or sits under any pattern
    interpreted as a dotted prefix."""
    for pat in patterns:
        if fnmatchcase(path, pat) or path.startswith(pat + "."):
            return True
    return False


def record_any(sink: Any, value: float) -> None:
    """Duck-typed helper: record into TimeSeries / add into Counter-likes."""
    if hasattr(sink, "record"):
        sink.record(value)
    elif hasattr(sink, "add"):
        sink.add(value)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unsupported sink {type(sink).__name__}")


class MetricsRegistry:
    """Flat dict of dotted path -> metric, with hierarchical views.

    ``sim`` only needs a ``.now`` attribute (time-based metrics stamp
    their samples with it); counters/gauges/histograms never touch it.
    """

    def __init__(self, sim=None) -> None:
        self.sim = sim
        self._metrics: dict[str, Any] = {}

    # -- get-or-create factories ---------------------------------------
    def _get(self, path: str, kind: type, factory: Callable[[], Any]):
        metric = self._metrics.get(path)
        if metric is None:
            metric = self._metrics[path] = factory()
            return metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {path!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}")
        return metric

    def counter(self, path: str) -> Counter:
        return self._get(path, Counter, lambda: Counter(path))

    def gauge(self, path: str) -> Gauge:
        return self._get(path, Gauge, lambda: Gauge(path))

    def series(self, path: str) -> TimeSeries:
        return self._get(path, TimeSeries, lambda: TimeSeries(self.sim, path))

    def rate(self, path: str) -> IntervalRate:
        return self._get(path, IntervalRate, lambda: IntervalRate(self.sim, path))

    def histogram(self, path: str) -> Histogram:
        return self._get(path, Histogram, lambda: Histogram(path))

    # -- inspection -----------------------------------------------------
    def get(self, path: str, default: Any = None) -> Any:
        return self._metrics.get(path, default)

    def __contains__(self, path: str) -> bool:
        return path in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(self._metrics)

    def paths(self) -> list[str]:
        return sorted(self._metrics)

    def find(self, prefix: str) -> dict[str, Any]:
        """All metrics at or below ``prefix`` in the dotted hierarchy."""
        dotted = prefix + "."
        return {p: m for p, m in self._metrics.items()
                if p == prefix or p.startswith(dotted)}

    def value(self, path: str, default: float = 0.0) -> float:
        """Scalar shortcut: counter/gauge value, rate total, series mean."""
        metric = self._metrics.get(path)
        if metric is None:
            return default
        if isinstance(metric, (Counter, Gauge)):
            return float(metric.value)
        if isinstance(metric, IntervalRate):
            return float(metric.total)
        if isinstance(metric, Histogram):
            return float(metric.count)
        return metric.mean()

    def snapshot(self, prefix: str = "") -> dict[str, dict]:
        """Path -> describe() dict, optionally restricted to a prefix."""
        metrics = self.find(prefix) if prefix else self._metrics
        return {path: metrics[path].describe() for path in sorted(metrics)}

    def select(self, patterns: Iterable[str]) -> list[str]:
        """Sorted paths matching any pattern: ``fnmatch``-style globs
        (``*.driver.repair.seconds``) or bare prefixes, which match their
        whole subtree (``h0.driver`` matches ``h0.driver.pulse.tx``)."""
        pats = list(patterns)
        return sorted(p for p in self._metrics if path_matches(p, pats))

    def export(self, patterns: Iterable[str]) -> dict[str, dict]:
        """Path -> full-data export() dict for every selected metric —
        the JSON-ready form result envelopes carry between processes."""
        return {path: self._metrics[path].export()
                for path in self.select(patterns)}

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self, prefix)


class MetricsScope:
    """A registry view that prefixes every path with ``<prefix>.``."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self.registry = registry
        self.prefix = prefix.rstrip(".")

    def _join(self, path: str) -> str:
        return f"{self.prefix}.{path}" if path else self.prefix

    def counter(self, path: str) -> Counter:
        return self.registry.counter(self._join(path))

    def gauge(self, path: str) -> Gauge:
        return self.registry.gauge(self._join(path))

    def series(self, path: str) -> TimeSeries:
        return self.registry.series(self._join(path))

    def rate(self, path: str) -> IntervalRate:
        return self.registry.rate(self._join(path))

    def histogram(self, path: str) -> Histogram:
        return self.registry.histogram(self._join(path))

    def get(self, path: str, default: Any = None) -> Any:
        return self.registry.get(self._join(path), default)

    def value(self, path: str, default: float = 0.0) -> float:
        return self.registry.value(self._join(path), default)

    def find(self, path: str = "") -> dict[str, Any]:
        return self.registry.find(self._join(path))

    def snapshot(self, path: str = "") -> dict[str, dict]:
        return self.registry.snapshot(self._join(path))

    def scope(self, prefix: str) -> "MetricsScope":
        return MetricsScope(self.registry, self._join(prefix))

    def __repr__(self) -> str:
        return f"MetricsScope({self.prefix!r})"
