"""Lightweight trace spans and point events over simulated time.

A :class:`Tracer` accumulates a structured event log: *spans* carry a
start and end timestamp (``trace.span("punch", peer=...)`` as a context
manager, or :meth:`Tracer.begin` / :meth:`Span.end` when the interval
crosses process boundaries, as hole punching does), *events* are
instants.  Records land in the log in completion order and export to
JSONL, one record per line::

    {"kind": "span", "name": "punch", "t0": 0.43, "t1": 0.61,
     "dur": 0.18, "attrs": {"host": "h0", "peer": "h1"}}
    {"kind": "event", "name": "garp", "t": 14.02, "attrs": {"vm": "vm"}}
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """An open interval; :meth:`end` closes it and records it."""

    __slots__ = ("tracer", "name", "t0", "t1", "attrs")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.t0 = tracer.sim.now
        self.t1: Optional[float] = None
        self.attrs = attrs

    @property
    def ended(self) -> bool:
        return self.t1 is not None

    @property
    def duration(self) -> float:
        return (self.t1 if self.t1 is not None else self.tracer.sim.now) - self.t0

    def annotate(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self, **attrs: Any) -> "Span":
        """Close the span (idempotent) and append it to the tracer log."""
        if self.t1 is not None:
            return self
        self.t1 = self.tracer.sim.now
        self.attrs.update(attrs)
        self.tracer._append({
            "kind": "span", "name": self.name, "t0": self.t0, "t1": self.t1,
            "dur": self.t1 - self.t0, "attrs": self.attrs,
        })
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc is not None:
            self.attrs.setdefault("error", repr(exc))
        self.end()

    def __repr__(self) -> str:
        state = f"t1={self.t1}" if self.ended else "open"
        return f"Span({self.name}, t0={self.t0}, {state})"


class Tracer:
    """In-sim structured event log (``sim`` needs only ``.now``)."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.records: list[dict] = []

    def _append(self, record: dict) -> None:
        self.records.append(record)

    # -- recording ------------------------------------------------------
    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a span; the caller ends it (possibly in another process)."""
        return Span(self, name, attrs)

    def span(self, name: str, **attrs: Any) -> Span:
        """Context-manager form: ``with trace.span("phase"): ...``."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> dict:
        record = {"kind": "event", "name": name, "t": self.sim.now,
                  "attrs": attrs}
        self._append(record)
        return record

    # -- querying -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def find(self, name: Optional[str] = None, kind: Optional[str] = None) -> list[dict]:
        return [r for r in self.records
                if (name is None or r["name"] == name)
                and (kind is None or r["kind"] == kind)]

    def spans(self, name: Optional[str] = None) -> list[dict]:
        return self.find(name, kind="span")

    def events(self, name: Optional[str] = None) -> list[dict]:
        return self.find(name, kind="event")

    def names(self) -> list[str]:
        """Distinct record names in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r["name"])
        return list(seen)

    # -- export ---------------------------------------------------------
    def export(self, patterns) -> list[dict]:
        """Records whose name matches any glob/prefix pattern (see
        :func:`repro.obs.metrics.path_matches`), in log order — the
        selection result envelopes carry out of worker processes."""
        from repro.obs.metrics import path_matches

        pats = list(patterns)
        return [r for r in self.records if path_matches(r["name"], pats)]

    def to_jsonl(self) -> str:
        """One JSON object per line; non-JSON attrs stringified."""
        return "\n".join(json.dumps(r, default=str) for r in self.records)

    def dump_jsonl(self, path) -> pathlib.Path:
        path = pathlib.Path(path)
        text = self.to_jsonl()
        path.write_text(text + "\n" if text else "")
        return path

    def clear(self) -> None:
        self.records.clear()
